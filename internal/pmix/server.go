package pmix

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"sync"
	"time"

	"gompi/internal/prrte"
	"gompi/internal/simnet"
	"gompi/internal/topo"
)

// Server is the PMIx server for one node. In simulator mode it is hosted on
// the node's PRRTE daemon; in process mode on a BootClient relaying to the
// launcher. Either way it services the clients of all local ranks.
type Server struct {
	daemon Runtime
	job    prrte.JobMap
	nspace string

	mu          sync.Mutex //gompilint:lockorder rank=22
	clients     map[int]*Client
	published   map[int]map[string][]byte // committed per local rank
	remoteCache map[string][]byte         // "modex/<rank>/<key>" -> value
	colls       map[string]*collOp
	executing   map[string]*collOp // ops whose executor is in the inter-server exchange
	seqs        map[string]uint64
	terminated  map[int]bool
	pendingEvs  map[int][]Event // targeted events for not-yet-connected ranks

	evq    chan Event
	closed chan struct{}

	// workMu serializes modeled server-side processing: real PMIx servers
	// handle local client requests one at a time, which is why collective
	// runtime operations scale with the number of local participants.
	workMu sync.Mutex //gompilint:lockorder rank=20
}

// work charges d of serialized server processing time.
func (s *Server) work(d time.Duration) {
	if d <= 0 {
		return
	}
	s.workMu.Lock()
	simnet.Delay(d)
	s.workMu.Unlock()
}

func (s *Server) profile() topo.Profile {
	return s.daemon.Profile()
}

// collOp is the local rendezvous state for one collective instance.
type collOp struct {
	need     int
	ranks    []int // all participants (across nodes)
	contribs map[int][]byte
	executed bool
	done     chan struct{}
	// abort is closed when a participant rank is reported dead while the
	// executor is blocked in the inter-server exchange, cancelling it in
	// event-delivery time instead of after the full timeout; aborted guards
	// the close.
	abort   chan struct{}
	aborted bool
	result  map[int][]byte // per-rank data from all participants
	pgcid   uint64
	err     error
}

func (op *collOp) expects(rank int) bool {
	for _, r := range op.ranks {
		if r == rank {
			return true
		}
	}
	return false
}

// NewServer creates the PMIx server for the runtime's node and attaches it
// as the runtime's handler for inbound fetches and events.
func NewServer(daemon Runtime, job prrte.JobMap, nspace string) *Server {
	s := &Server{
		daemon:      daemon,
		job:         job,
		nspace:      nspace,
		clients:     make(map[int]*Client),
		published:   make(map[int]map[string][]byte),
		remoteCache: make(map[string][]byte),
		colls:       make(map[string]*collOp),
		executing:   make(map[string]*collOp),
		seqs:        make(map[string]uint64),
		terminated:  make(map[int]bool),
		pendingEvs:  make(map[int][]Event),
		evq:         make(chan Event, 1024),
		closed:      make(chan struct{}),
	}
	daemon.AttachServer(s)
	go s.dispatchEvents()
	return s
}

// Node returns the node this server manages.
func (s *Server) Node() int { return s.daemon.Node() }

// Job returns the job map.
func (s *Server) Job() prrte.JobMap { return s.job }

// Close stops the server's event dispatcher.
func (s *Server) Close() {
	select {
	case <-s.closed:
	default:
		close(s.closed)
	}
}

// Connect registers a client for a local rank and returns it. Connecting a
// rank that is not mapped to this node is a wiring bug and panics.
//
// Reconnecting a rank the server had recorded as terminated is the respawn
// path: the rank is re-admitted (it reappears in gompi://alive), stale
// modex cache entries for its old incarnation are dropped, and an
// EventProcRestarted broadcast tells every other node to do the same.
func (s *Server) Connect(rank int) *Client {
	if s.job.NodeOf(rank) != s.Node() {
		panic(fmt.Sprintf("pmix: rank %d is mapped to node %d, not node %d", rank, s.job.NodeOf(rank), s.Node()))
	}
	s.work(s.profile().ClientConnectWork)
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok := s.clients[rank]; ok {
		return c
	}
	c := &Client{
		server: s,
		proc:   Proc{Nspace: s.nspace, Rank: rank},
		staged: make(map[string][]byte),
	}
	s.clients[rank] = c
	revived := s.terminated[rank]
	delete(s.terminated, rank)
	if revived {
		s.dropRemoteCacheLocked(rank)
	}
	pending := s.pendingEvs[rank]
	delete(s.pendingEvs, rank)
	s.mu.Unlock()
	if revived {
		s.daemon.NoteRevivedRank(rank)
		s.daemon.BroadcastEvent(encodeEvent(Event{
			Code:   EventProcRestarted,
			Source: Proc{Nspace: s.nspace, Rank: rank},
		}))
	}
	// Replay targeted events (e.g. group invitations) that arrived before
	// the process connected.
	for _, ev := range pending {
		c.deliverEvent(ev)
	}
	s.mu.Lock()
	return c
}

// HandleFetch implements prrte.ServerHandler: it serves direct-modex
// requests for data published by local ranks.
func (s *Server) HandleFetch(key string) ([]byte, bool) {
	var rank int
	var sub string
	if _, err := fmt.Sscanf(key, "modex/%d/%s", &rank, &sub); err != nil {
		return nil, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if kv, ok := s.published[rank]; ok {
		if v, ok := kv[sub]; ok {
			return v, true
		}
	}
	return nil, false
}

// HandleEvent implements prrte.ServerHandler: broadcast events are queued
// for asynchronous dispatch to local clients' handlers.
func (s *Server) HandleEvent(data []byte) {
	ev, err := decodeEvent(data)
	if err != nil {
		return
	}
	select {
	case s.evq <- ev:
	case <-s.closed:
	}
}

func (s *Server) dispatchEvents() {
	for {
		select {
		case ev := <-s.evq:
			s.mu.Lock()
			if ev.Code == EventProcTerminated {
				s.terminated[ev.Source.Rank] = true
				// Fail pending collectives that expect the dead rank on THIS
				// node too — before this pass only the dying rank's own
				// server failed them, and everyone else waited out the full
				// operation timeout.
				s.failCollsForLocked(ev.Source.Rank)
			}
			if ev.Code == EventProcRestarted {
				delete(s.terminated, ev.Source.Rank)
				s.dropRemoteCacheLocked(ev.Source.Rank)
			}
			// A targeted event for a local rank that has not connected yet
			// is held until it does (it may still be initializing).
			if t := ev.Target; t != (Proc{}) && s.job.NodeOf(t.Rank) == s.Node() {
				if _, connected := s.clients[t.Rank]; !connected && !s.terminated[t.Rank] {
					s.pendingEvs[t.Rank] = append(s.pendingEvs[t.Rank], ev)
					s.mu.Unlock()
					continue
				}
			}
			clients := make([]*Client, 0, len(s.clients))
			for _, c := range s.clients {
				clients = append(clients, c)
			}
			s.mu.Unlock()
			switch ev.Code {
			case EventProcTerminated:
				s.daemon.NoteDeadRank(ev.Source.Rank)
			case EventProcRestarted:
				s.daemon.NoteRevivedRank(ev.Source.Rank)
			}
			for _, c := range clients {
				c.deliverEvent(ev)
			}
		case <-s.closed:
			return
		}
	}
}

// seqKeyFor composes the per-rank collective counter key; collective takes
// it alongside opKey so an aborted operation can return its number.
func seqKeyFor(rank int, kind, set string) string {
	return fmt.Sprintf("%d|%s|%s", rank, kind, set)
}

// nextSeqFor hands out rank-scoped collective sequence numbers; see
// Client.nextSeq for the consistency argument.
func (s *Server) nextSeqFor(rank int, kind, set string) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	k := seqKeyFor(rank, kind, set)
	s.seqs[k]++
	return s.seqs[k]
}

// publish commits a client's staged data, mirroring it into the runtime
// (outside s.mu — PublishModex may block on a socket).
func (s *Server) publish(rank int, kv map[string][]byte) {
	s.mu.Lock()
	dst := s.published[rank]
	if dst == nil {
		dst = make(map[string][]byte)
		s.published[rank] = dst
	}
	for k, v := range kv {
		dst[k] = v
	}
	s.mu.Unlock()
	s.daemon.PublishModex(rank, kv)
}

// get resolves a key for a proc: local published data first, then the
// remote cache, then a direct fetch from the proc's node (charged on the
// fabric). This mirrors Open MPI's on-demand add_procs behaviour (§III-B1):
// remote processes are discovered on first communication.
func (s *Server) get(rank int, key string, timeout time.Duration) ([]byte, error) {
	node := s.job.NodeOf(rank)
	cacheKey := fmt.Sprintf("modex/%d/%s", rank, key)
	s.mu.Lock()
	if node == s.Node() {
		if kv, ok := s.published[rank]; ok {
			if v, ok := kv[key]; ok {
				s.mu.Unlock()
				return v, nil
			}
		}
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: %s for rank %d", ErrKeyNotFound, key, rank)
	}
	if v, ok := s.remoteCache[cacheKey]; ok {
		s.mu.Unlock()
		return v, nil
	}
	s.mu.Unlock()

	data, ok, err := s.daemon.Fetch(node, cacheKey, timeout)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("%w: %s for rank %d", ErrKeyNotFound, key, rank)
	}
	s.mu.Lock()
	s.remoteCache[cacheKey] = data
	s.mu.Unlock()
	return data, nil
}

// collective runs the three-stage hierarchical pattern for one local
// participant (rank) of the operation identified by opKey:
//
//	stage 1: local participants rendezvous at their server;
//	stage 2: the last local arriver drives the inter-server all-to-all
//	         (and, if leaderAlloc is set and this node is the leader,
//	         obtains a PGCID from the resource manager first);
//	stage 3: all local participants are released with the merged result.
//
// contrib is this rank's contribution; the returned map holds every
// participant rank's contribution. ranks lists all participants.
// clientWork is the modeled serialized server cost per local arrival;
// nodeWork per remote node contribution processed by the executor.
//
// seqKey is the rank's counter key from seqKeyFor ("" = no counter). When
// the rank times out at stage 3 before anyone executed the operation, its
// contribution is withdrawn and the sequence number returned: the op never
// consumed either, and keeping them would poison the next collective over
// the same set — the retrying rank would wait under a fresh opKey while the
// stale contribution completes the old one for everyone else.
func (s *Server) collective(opKey, seqKey string, rank int, ranks []int, contrib []byte, leaderAlloc string, clientWork, nodeWork time.Duration, timeout time.Duration) (map[int][]byte, uint64, error) {
	s.work(clientWork)
	nodes := participantNodes(ranks, s.job.NodeOf)
	needLocal := 0
	for _, r := range ranks {
		if s.job.NodeOf(r) == s.Node() {
			needLocal++
		}
	}
	if needLocal == 0 {
		return nil, 0, fmt.Errorf("%w: rank %d not hosted on node %d", ErrBadArgument, rank, s.Node())
	}

	s.mu.Lock()
	// Fail fast when a participant is already known dead: waiting for its
	// contribution could only end in a timeout. The sequence number is
	// returned like the timeout-withdrawal path — the op never consumed it —
	// and callers recover by rebuilding over a survivor set (which has a
	// different set key, hence its own counter).
	for _, r := range ranks {
		if s.terminated[r] {
			if seqKey != "" && s.seqs[seqKey] > 0 {
				s.seqs[seqKey]--
			}
			s.mu.Unlock()
			return nil, 0, fmt.Errorf("pmix: collective %q: rank %d: %w", opKey, r, ErrTerminated)
		}
	}
	op := s.colls[opKey]
	if op == nil {
		op = &collOp{need: needLocal, ranks: ranks, contribs: make(map[int][]byte), done: make(chan struct{}), abort: make(chan struct{})}
		s.colls[opKey] = op
	}
	if _, dup := op.contribs[rank]; dup {
		s.mu.Unlock()
		return nil, 0, fmt.Errorf("%w: rank %d joined %q twice", ErrBadArgument, rank, opKey)
	}
	op.contribs[rank] = contrib
	isExecutor := len(op.contribs) == op.need && !op.executed
	if isExecutor {
		op.executed = true
	}
	s.mu.Unlock()

	if isExecutor {
		s.executeCollective(opKey, op, nodes, leaderAlloc, ranks, nodeWork, timeout)
	}

	// Stage 3: wait for completion.
	if timeout > 0 {
		timer := time.NewTimer(timeout)
		defer timer.Stop()
		select {
		case <-op.done:
		case <-timer.C:
			s.mu.Lock()
			if s.colls[opKey] == op && !op.executed {
				delete(op.contribs, rank)
				if len(op.contribs) == 0 {
					delete(s.colls, opKey)
				}
				if seqKey != "" && s.seqs[seqKey] > 0 {
					s.seqs[seqKey]--
				}
			}
			s.mu.Unlock()
			return nil, 0, fmt.Errorf("pmix: collective %q: %w", opKey, ErrTimeout)
		}
	} else {
		<-op.done
	}
	if op.err != nil {
		return nil, 0, op.err
	}
	return op.result, op.pgcid, nil
}

// executeCollective runs stage 2 on behalf of all local participants.
func (s *Server) executeCollective(opKey string, op *collOp, nodes []int, leaderAlloc string, ranks []int, nodeWork, timeout time.Duration) {
	defer close(op.done)

	// Leader obtains the PGCID from the resource manager before the
	// exchange so it can ride along with the leader's contribution.
	var pgcid uint64
	if leaderAlloc != "" && nodes[0] == s.Node() {
		id, err := s.daemon.AllocPGCID(leaderAlloc, ranks, timeout)
		if err != nil {
			op.err = err
			return
		}
		pgcid = id
	}

	s.mu.Lock()
	local := nodeBlob{PGCID: pgcid, Data: make(map[int][]byte, len(op.contribs))}
	for r, c := range op.contribs {
		local.Data[r] = c
	}
	delete(s.colls, opKey)
	// Track the in-flight exchange so a death notification can cancel it
	// (failCollsForLocked closes op.abort).
	s.executing[opKey] = op
	s.mu.Unlock()

	contribution := encodeNodeBlob(local)
	results, err := s.daemon.Exchange(opKey, nodes, contribution, timeout, op.abort)
	s.mu.Lock()
	delete(s.executing, opKey)
	s.mu.Unlock()
	if err != nil {
		// Normalize runtime-level errors so callers check one error class;
		// the prrte chain stays inspectable.
		if errors.Is(err, prrte.ErrTimeout) {
			err = fmt.Errorf("pmix: collective %q: %w (%w)", opKey, ErrTimeout, err)
		} else if errors.Is(err, prrte.ErrDeadParticipant) {
			err = fmt.Errorf("pmix: collective %q: %w (%w)", opKey, ErrTerminated, err)
		}
		op.err = err
		return
	}
	// Process each remote node's contribution (modeled serialized cost).
	s.work(nodeWork * time.Duration(len(nodes)-1))
	merged := make(map[int][]byte)
	var gotPGCID uint64
	for _, blob := range results {
		nb, err := decodeNodeBlob(blob)
		if err != nil {
			op.err = fmt.Errorf("pmix: collective %q: corrupt contribution: %w", opKey, err)
			return
		}
		if nb.PGCID != 0 {
			gotPGCID = nb.PGCID
		}
		for r, c := range nb.Data {
			merged[r] = c
		}
	}
	op.result = merged
	op.pgcid = gotPGCID
}

// nodeBlob is the per-node contribution to an inter-server exchange.
type nodeBlob struct {
	PGCID uint64
	Data  map[int][]byte
}

func encodeNodeBlob(nb nodeBlob) []byte {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(nb); err != nil {
		panic(fmt.Sprintf("pmix: node blob encode: %v", err))
	}
	return buf.Bytes()
}

func decodeNodeBlob(data []byte) (nodeBlob, error) {
	var nb nodeBlob
	err := gob.NewDecoder(bytes.NewReader(data)).Decode(&nb)
	return nb, err
}

// fence implements PMIx_Fence for one local participant. With collect set,
// every participant's committed data is exchanged and cached so later Gets
// are local.
func (s *Server) fence(rank int, ranks []int, opKey, seqKey string, collect bool, timeout time.Duration) error {
	var contrib []byte
	if collect {
		s.mu.Lock()
		kv := s.published[rank]
		cp := make(map[string][]byte, len(kv))
		for k, v := range kv {
			cp[k] = v
		}
		s.mu.Unlock()
		contrib = encodeKV(cp)
	}
	prof := s.profile()
	result, _, err := s.collective(opKey, seqKey, rank, ranks, contrib, "", prof.FenceClientWork, prof.FenceNodeWork, timeout)
	if err != nil {
		return err
	}
	if collect {
		s.mu.Lock()
		for r, blob := range result {
			if len(blob) == 0 || s.job.NodeOf(r) == s.Node() {
				continue
			}
			kv, err := decodeKV(blob)
			if err != nil {
				continue
			}
			for k, v := range kv {
				s.remoteCache[fmt.Sprintf("modex/%d/%s", r, k)] = v
			}
		}
		s.mu.Unlock()
	}
	return nil
}

func encodeKV(kv map[string][]byte) []byte {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(kv); err != nil {
		panic(fmt.Sprintf("pmix: kv encode: %v", err))
	}
	return buf.Bytes()
}

func decodeKV(data []byte) (map[string][]byte, error) {
	var kv map[string][]byte
	err := gob.NewDecoder(bytes.NewReader(data)).Decode(&kv)
	return kv, err
}

// failCollsForLocked fails every pending collective that expects a rank now
// known dead. Ops still gathering local contributions complete immediately
// with ErrTerminated; an op whose executor is already blocked in the
// inter-server exchange has its abort channel closed so the exchange
// returns in event-delivery time rather than after the full timeout.
// Caller holds s.mu.
func (s *Server) failCollsForLocked(rank int) {
	for key, op := range s.colls {
		if op.executed || !op.expects(rank) {
			continue
		}
		op.err = fmt.Errorf("%w: rank %d", ErrTerminated, rank)
		op.executed = true
		close(op.done)
		delete(s.colls, key)
	}
	for _, op := range s.executing {
		if !op.expects(rank) || op.aborted {
			continue
		}
		op.aborted = true
		close(op.abort)
	}
}

// dropRemoteCacheLocked forgets cached modex data for one rank, used when
// the rank is respawned: the new incarnation publishes fresh endpoints and
// the old entries would route traffic to a dead mailbox. Caller holds s.mu.
func (s *Server) dropRemoteCacheLocked(rank int) {
	prefix := fmt.Sprintf("modex/%d/", rank)
	for k := range s.remoteCache {
		if len(k) >= len(prefix) && k[:len(prefix)] == prefix {
			delete(s.remoteCache, k)
		}
	}
}

// abort marks a local rank terminated and broadcasts the failure to every
// node. Pending local collectives that expected the rank fail immediately;
// remote participants learn through the broadcast, whose handler runs the
// same failure pass on their server (dispatchEvents), so no one is left to
// ride a timeout out.
func (s *Server) abort(rank int) {
	s.mu.Lock()
	s.terminated[rank] = true
	delete(s.clients, rank)
	s.failCollsForLocked(rank)
	s.mu.Unlock()
	s.daemon.NoteDeadRank(rank)
	s.daemon.BroadcastEvent(encodeEvent(Event{
		Code:   EventProcTerminated,
		Source: Proc{Nspace: s.nspace, Rank: rank},
	}))
}

// queryPsets returns the runtime's pset registry.
func (s *Server) queryPsets() (map[string][]int, error) {
	return s.daemon.QueryPsets(0)
}
