package pmix

import "testing"

func TestClientAccessors(t *testing.T) {
	e := newEnv(t, 2, 2)
	c := e.clients[2] // rank 2, node 1
	if c.Proc().Rank != 2 || c.Proc().Nspace != "job-0" {
		t.Fatalf("Proc = %v", c.Proc())
	}
	if c.Rank() != 2 {
		t.Fatalf("Rank = %d", c.Rank())
	}
	if c.JobSize() != 4 {
		t.Fatalf("JobSize = %d", c.JobSize())
	}
	if c.NodeOf(0) != 0 || c.NodeOf(3) != 1 {
		t.Fatalf("NodeOf = %d/%d", c.NodeOf(0), c.NodeOf(3))
	}
	locals := c.LocalRanks()
	if len(locals) != 2 || locals[0] != 2 || locals[1] != 3 {
		t.Fatalf("LocalRanks = %v", locals)
	}
	if (Proc{Nspace: "a", Rank: 1}).String() != "a:1" {
		t.Fatal("Proc.String format")
	}
}
