package prrte

import (
	"sync"
	"testing"
	"time"
)

type countingHandler struct {
	mu     sync.Mutex
	events [][]byte
}

func (h *countingHandler) HandleFetch(string) ([]byte, bool) { return nil, false }
func (h *countingHandler) HandleEvent(data []byte) {
	h.mu.Lock()
	h.events = append(h.events, data)
	h.mu.Unlock()
}
func (h *countingHandler) count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.events)
}

// TestRoutedBroadcastReachesAllNodesOnce covers the binomial relay at node
// counts including non-powers of two and non-zero roots.
func TestRoutedBroadcastReachesAllNodesOnce(t *testing.T) {
	for _, nodes := range []int{1, 2, 3, 5, 8, 13} {
		for _, origin := range []int{0, nodes - 1, nodes / 2} {
			dvm := testDVM(t, nodes)
			handlers := make([]*countingHandler, nodes)
			for i := range handlers {
				handlers[i] = &countingHandler{}
				dvm.Daemon(i).AttachServer(handlers[i])
			}
			dvm.Daemon(origin).BroadcastEvent([]byte{byte(origin)})
			deadline := time.Now().Add(2 * time.Second)
			for {
				all := true
				for _, h := range handlers {
					if h.count() != 1 {
						all = false
						break
					}
				}
				if all {
					break
				}
				if time.Now().After(deadline) {
					counts := make([]int, nodes)
					for i, h := range handlers {
						counts[i] = h.count()
					}
					t.Fatalf("nodes=%d origin=%d: counts=%v, want all 1", nodes, origin, counts)
				}
				time.Sleep(time.Millisecond)
			}
			// No duplicates after settling.
			time.Sleep(10 * time.Millisecond)
			for i, h := range handlers {
				if h.count() != 1 {
					t.Fatalf("nodes=%d origin=%d: node %d got %d deliveries", nodes, origin, i, h.count())
				}
			}
		}
	}
}

func TestBroadcastDepth(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 8: 3, 9: 4, 32: 5}
	for n, want := range cases {
		if got := BroadcastDepth(n); got != want {
			t.Errorf("BroadcastDepth(%d) = %d, want %d", n, got, want)
		}
	}
}
