package prrte

// Retry policy for the daemon control plane.
//
// The simulated wire can drop, duplicate, delay, and reorder control
// messages (simnet fault plans), so every daemon round-trip must tolerate a
// lost request or reply. The policy is deliberately narrow:
//
//   - Only a reply TIMEOUT is transient. A closed endpoint or a shut-down
//     DVM is permanent: the peer is gone and reissuing the request cannot
//     help, it can only mask a real failure.
//   - Retries are bounded (rpcAttempts) and paced with exponential backoff
//     clamped to backoffMax, so a partitioned daemon degrades into a
//     deterministic ErrTimeout instead of hammering the fabric forever.
//   - The caller's deadline always wins: a retry never extends the overall
//     timeout the PMIx layer asked for.
//
// Request/response RPCs (PGCID allocation, pset queries, fetches, lookups)
// are idempotent reads or at-most-once allocations where a duplicated
// request is harmless, so they are simply reissued. The all-to-all
// Exchange is different: a daemon that already completed the operation has
// deleted its pending state, so late askers could never recover a dropped
// contribution. Each daemon therefore keeps a small ring of completed
// operations (its own contribution retained) and answers re-requests from
// that cache — see the Want flag on xchgMsg.

import (
	"errors"
	"fmt"
	"time"

	"gompi/internal/simnet"
)

const (
	// rpcAttempts bounds how many times one logical control-plane
	// round-trip is issued before the operation fails with ErrTimeout.
	rpcAttempts = 8
	// rpcAttemptTimeout is the first per-attempt reply deadline; it doubles
	// every retry up to rpcAttemptMax. The fabric's control-plane RTT is
	// sub-millisecond, so the first window already covers heavy fault-plan
	// delay injection.
	rpcAttemptTimeout = 25 * time.Millisecond
	rpcAttemptMax     = 200 * time.Millisecond
	// rpcDefaultTimeout caps the whole retried round-trip when the caller
	// did not propagate a deadline.
	rpcDefaultTimeout = 10 * time.Second
	// backoffBase/backoffMax bound the idle pause between RPC retries.
	backoffBase = 2 * time.Millisecond
	backoffMax  = 50 * time.Millisecond
	// exchangeResendBase/Max pace the contribution re-offer rounds inside
	// Exchange while participants are missing.
	exchangeResendBase = 10 * time.Millisecond
	exchangeResendMax  = 100 * time.Millisecond
	// completedOpCache is how many finished all-to-all operations a daemon
	// remembers so it can serve Want re-requests after completing.
	completedOpCache = 128
)

// backoff yields exponentially growing waits clamped to max.
type backoff struct {
	cur, max time.Duration
}

func newBackoff(base, max time.Duration) *backoff { return &backoff{cur: base, max: max} }

func (b *backoff) next() time.Duration {
	d := b.cur
	b.cur *= 2
	if b.cur > b.max {
		b.cur = b.max
	}
	return d
}

// retryable reports whether a control-plane error is transient. Only reply
// timeouts qualify; everything else (closed endpoints, shutdown) is final.
func retryable(err error) bool { return errors.Is(err, simnet.ErrTimeout) }

// rpcRetry performs one logical request/response round-trip against another
// daemon with bounded retries. send must (re)issue the request addressed to
// the supplied transient reply endpoint; rpcRetry waits for the reply with
// growing per-attempt windows and reissues on timeout. timeout <= 0 applies
// rpcDefaultTimeout. The reply endpoint is shared by all attempts, so a
// late reply from an earlier attempt is indistinguishable from the current
// one and equally valid: all attempts carry the same logical request.
//
// With waitFull set, exhausting the retry budget does not fail the call:
// the remaining deadline is spent listening for the reply. That is the
// shape of a blocking lookup, where the server intentionally withholds the
// reply until the key is published — re-sends only guard against the
// request itself being dropped.
//
// hopeless, when non-nil, is consulted before every attempt: a non-nil
// error means no number of retries can succeed (the request depends on a
// rank the RM knows is dead) and the loop short-circuits with that error
// instead of burning the remaining attempts against a peer that will never
// answer usefully.
func (d *Daemon) rpcRetry(timeout time.Duration, waitFull bool, hopeless func() error, send func(replyTo simnet.Addr) error) (simnet.Message, error) {
	rep := d.replyEndpoint()
	defer rep.Close()

	if timeout <= 0 {
		timeout = rpcDefaultTimeout
	}
	deadline := time.Now().Add(timeout)
	attemptTO := rpcAttemptTimeout
	bo := newBackoff(backoffBase, backoffMax)
	for attempt := 0; attempt < rpcAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(bo.next())
		}
		if hopeless != nil {
			if herr := hopeless(); herr != nil {
				return simnet.Message{}, herr
			}
		}
		remaining := time.Until(deadline)
		if remaining <= 0 {
			break
		}
		if err := send(rep.Addr()); err != nil {
			return simnet.Message{}, err
		}
		to := attemptTO
		if to > remaining {
			to = remaining
		}
		m, err := rep.Recv(to)
		if err == nil {
			return m, nil
		}
		if !retryable(err) {
			return simnet.Message{}, err
		}
		attemptTO *= 2
		if attemptTO > rpcAttemptMax {
			attemptTO = rpcAttemptMax
		}
	}
	if waitFull {
		if remaining := time.Until(deadline); remaining > 0 {
			if m, err := rep.Recv(remaining); err == nil {
				return m, nil
			} else if !retryable(err) {
				return simnet.Message{}, err
			}
		}
	}
	return simnet.Message{}, fmt.Errorf("no reply after %d attempts: %w", rpcAttempts, ErrTimeout)
}
