package prrte

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"gompi/internal/topo"
)

// Process-mode bootstrap: when prun launches real OS processes (-transport
// udp), there is no in-process DVM to carry out-of-band traffic. Instead the
// parent runs a BootServer — a gob-over-TCP rendezvous service on loopback —
// and each child connects a BootClient, which implements the same
// pmix.Runtime surface as an in-process Daemon. The parent centralizes what
// the simulated DVM distributes: modex data pushed by children, the global
// name service, the pset registry, PGCID allocation, collective exchanges,
// and event fan-out.
//
// Correctness leans on TCP ordering plus serial per-connection processing at
// the parent: a child's modex push is handled before any request the same
// child sends later (e.g. its fence contribution), and cross-child races are
// absorbed by parent-side waiters — a Fetch for a key that has not arrived
// yet parks until the owning child's push lands or the deadline passes.

// defaultBootTimeout bounds replied operations whose caller passed no
// deadline; loopback rendezvous traffic that takes this long is wedged.
const defaultBootTimeout = 60 * time.Second

// bootMsg is one child-to-parent request.
type bootMsg struct {
	ID   uint64 // correlation ID; 0 = fire-and-forget
	Kind string

	Node         int
	Key          string
	Val          []byte
	KV           map[string][]byte
	Name         string
	Members      []int
	Participants []int
	TimeoutMs    int64
	Wait         bool
}

// bootReply is one parent-to-child message: a correlated reply (ID != 0) or
// an unsolicited event push (ID == 0, Event set).
type bootReply struct {
	ID    uint64
	Err   string
	OK    bool
	Val   []byte
	Map   map[int][]byte
	Psets map[string][]int
	N     uint64
	Event []byte
}

// Request kinds.
const (
	bootHello     = "hello"
	bootExchange  = "exchange"
	bootPGCID     = "pgcid"
	bootFetch     = "fetch"
	bootQuery     = "query"
	bootUpdatePs  = "updatePset"
	bootDeregPs   = "deregPset"
	bootPublish   = "publish"
	bootLookup    = "lookup"
	bootUnpublish = "unpublish"
	bootBcast     = "bcast"
	bootNotify    = "notify"
	bootModex     = "modex"
)

// bootConn is the parent's handle on one child connection.
type bootConn struct {
	conn net.Conn
	wmu  sync.Mutex //gompilint:lockorder rank=19
	enc  *gob.Encoder
	node int
}

func (c *bootConn) send(r bootReply) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return c.enc.Encode(r)
}

// bootOp is one in-flight collective exchange at the parent.
type bootOp struct {
	need     map[int]bool // participant nodes still outstanding
	contribs map[int][]byte
	waiters  []bootWaiter
}

type bootWaiter struct {
	conn *bootConn
	id   uint64
}

// keyWaiter parks a fetch or lookup until the key arrives or its timer fires.
type keyWaiter struct {
	conn  *bootConn
	id    uint64
	timer *time.Timer
}

// BootServer is the launcher-side rendezvous service.
type BootServer struct {
	ln net.Listener

	mu            sync.Mutex //gompilint:lockorder rank=17
	conns         map[int]*bootConn
	modex         map[string][]byte // "modex/<rank>/<key>" -> value
	published     map[string][]byte // global name service
	psets         map[string][]int
	nextPGCID     uint64
	ops           map[string]*bootOp
	fetchWaiters  map[string][]*keyWaiter
	lookupWaiters map[string][]*keyWaiter
	closed        bool
}

// NewBootServer starts the rendezvous service on addr ("127.0.0.1:0" picks a
// free port; Addr reports the bound address for the children's environment).
func NewBootServer(addr string) (*BootServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("prrte: boot listen %q: %w", addr, err)
	}
	s := &BootServer{
		ln:            ln,
		conns:         make(map[int]*bootConn),
		modex:         make(map[string][]byte),
		published:     make(map[string][]byte),
		psets:         make(map[string][]int),
		ops:           make(map[string]*bootOp),
		fetchWaiters:  make(map[string][]*keyWaiter),
		lookupWaiters: make(map[string][]*keyWaiter),
	}
	go s.accept()
	return s, nil
}

// Addr returns the listen address children must dial (GOMPI_BOOT).
func (s *BootServer) Addr() string { return s.ln.Addr().String() }

// RegisterPset seeds a launch-time pset (mpi://WORLD etc.) before children
// connect, mirroring DVM.RegisterPset.
func (s *BootServer) RegisterPset(name string, members []int) {
	cp := append([]int(nil), members...)
	s.mu.Lock()
	s.psets[name] = cp
	s.mu.Unlock()
}

// Close shuts the listener and every child connection.
func (s *BootServer) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	conns := make([]*bootConn, 0, len(s.conns))
	for _, c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	s.ln.Close()
	for _, c := range conns {
		c.conn.Close()
	}
}

func (s *BootServer) accept() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		go s.serve(conn)
	}
}

// serve processes one child's requests serially — the ordering guarantee the
// fire-and-forget kinds rely on. Kinds that must wait for other children
// never block this loop; they park a waiter and are answered later.
func (s *BootServer) serve(conn net.Conn) {
	bc := &bootConn{conn: conn, enc: gob.NewEncoder(conn), node: -1}
	dec := gob.NewDecoder(conn)
	for {
		var msg bootMsg
		if err := dec.Decode(&msg); err != nil {
			s.dropConn(bc)
			return
		}
		s.handle(bc, msg)
	}
}

func (s *BootServer) dropConn(bc *bootConn) {
	bc.conn.Close()
	s.mu.Lock()
	if bc.node >= 0 && s.conns[bc.node] == bc {
		delete(s.conns, bc.node)
	}
	s.mu.Unlock()
}

func (s *BootServer) handle(bc *bootConn, msg bootMsg) {
	switch msg.Kind {
	case bootHello:
		s.mu.Lock()
		bc.node = msg.Node
		s.conns[msg.Node] = bc
		s.mu.Unlock()
		_ = bc.send(bootReply{ID: msg.ID, OK: true})

	case bootModex:
		// Store rank-committed modex data and wake any parked fetches.
		s.mu.Lock()
		var woken []wokenWaiter
		for k, v := range msg.KV {
			full := fmt.Sprintf("modex/%d/%s", msg.Node, k)
			s.modex[full] = v
			woken = append(woken, s.takeWaitersLocked(s.fetchWaiters, full, v)...)
		}
		s.mu.Unlock()
		replyWoken(woken)

	case bootFetch:
		s.mu.Lock()
		if v, ok := s.modex[msg.Key]; ok {
			s.mu.Unlock()
			_ = bc.send(bootReply{ID: msg.ID, OK: true, Val: v})
			return
		}
		if !msg.Wait {
			s.mu.Unlock()
			_ = bc.send(bootReply{ID: msg.ID, OK: false})
			return
		}
		s.parkLocked(s.fetchWaiters, msg.Key, bc, msg.ID, time.Duration(msg.TimeoutMs)*time.Millisecond)
		s.mu.Unlock()

	case bootExchange:
		s.mu.Lock()
		op := s.ops[msg.Key]
		if op == nil {
			op = &bootOp{need: make(map[int]bool), contribs: make(map[int][]byte)}
			for _, n := range msg.Participants {
				op.need[n] = true
			}
			s.ops[msg.Key] = op
		}
		op.contribs[msg.Node] = msg.Val
		delete(op.need, msg.Node)
		op.waiters = append(op.waiters, bootWaiter{conn: bc, id: msg.ID})
		if len(op.need) > 0 {
			s.mu.Unlock()
			return
		}
		delete(s.ops, msg.Key)
		waiters := op.waiters
		result := op.contribs
		s.mu.Unlock()
		for _, w := range waiters {
			_ = w.conn.send(bootReply{ID: w.id, OK: true, Map: result})
		}

	case bootPGCID:
		s.mu.Lock()
		s.nextPGCID++
		id := s.nextPGCID
		if msg.Name != "" {
			s.psets[msg.Name] = append([]int(nil), msg.Members...)
		}
		s.mu.Unlock()
		_ = bc.send(bootReply{ID: msg.ID, OK: true, N: id})

	case bootQuery:
		s.mu.Lock()
		snap := make(map[string][]int, len(s.psets))
		for name, members := range s.psets {
			snap[name] = append([]int(nil), members...)
		}
		s.mu.Unlock()
		_ = bc.send(bootReply{ID: msg.ID, OK: true, Psets: snap})

	case bootUpdatePs:
		s.mu.Lock()
		s.psets[msg.Name] = append([]int(nil), msg.Members...)
		s.mu.Unlock()

	case bootDeregPs:
		s.mu.Lock()
		delete(s.psets, msg.Name)
		s.mu.Unlock()

	case bootPublish:
		s.mu.Lock()
		s.published[msg.Key] = msg.Val
		woken := s.takeWaitersLocked(s.lookupWaiters, msg.Key, msg.Val)
		s.mu.Unlock()
		replyWoken(woken)

	case bootLookup:
		s.mu.Lock()
		if v, ok := s.published[msg.Key]; ok {
			s.mu.Unlock()
			_ = bc.send(bootReply{ID: msg.ID, OK: true, Val: v})
			return
		}
		if !msg.Wait {
			s.mu.Unlock()
			_ = bc.send(bootReply{ID: msg.ID, OK: false})
			return
		}
		s.parkLocked(s.lookupWaiters, msg.Key, bc, msg.ID, time.Duration(msg.TimeoutMs)*time.Millisecond)
		s.mu.Unlock()

	case bootUnpublish:
		s.mu.Lock()
		delete(s.published, msg.Key)
		s.mu.Unlock()

	case bootBcast:
		// Fan the event out to every connected child, the sender included
		// (the Daemon delivers broadcast events to its own handler too).
		s.mu.Lock()
		conns := make([]*bootConn, 0, len(s.conns))
		for _, c := range s.conns {
			conns = append(conns, c)
		}
		s.mu.Unlock()
		for _, c := range conns {
			_ = c.send(bootReply{Event: msg.Val})
		}

	case bootNotify:
		s.mu.Lock()
		c := s.conns[msg.Node]
		s.mu.Unlock()
		if c != nil {
			_ = c.send(bootReply{Event: msg.Val})
		}
	}
}

// wokenWaiter pairs a parked waiter with the value that satisfied it.
type wokenWaiter struct {
	w   *keyWaiter
	val []byte
}

// takeWaitersLocked detaches every waiter parked on key; callers reply after
// releasing s.mu. Waiters whose timer already fired are skipped (Stop false
// means the timeout reply was or is being sent).
func (s *BootServer) takeWaitersLocked(table map[string][]*keyWaiter, key string, val []byte) []wokenWaiter {
	ws := table[key]
	if len(ws) == 0 {
		return nil
	}
	delete(table, key)
	out := make([]wokenWaiter, 0, len(ws))
	for _, w := range ws {
		if w.timer.Stop() {
			out = append(out, wokenWaiter{w: w, val: val})
		}
	}
	return out
}

func replyWoken(woken []wokenWaiter) {
	for _, ww := range woken {
		_ = ww.w.conn.send(bootReply{ID: ww.w.id, OK: true, Val: ww.val})
	}
}

// parkLocked registers a waiter for key with a timeout that answers
// "not found" if nothing arrives in time. Called with s.mu held.
func (s *BootServer) parkLocked(table map[string][]*keyWaiter, key string, bc *bootConn, id uint64, timeout time.Duration) {
	if timeout <= 0 {
		timeout = defaultBootTimeout
	}
	w := &keyWaiter{conn: bc, id: id}
	w.timer = time.AfterFunc(timeout, func() {
		s.mu.Lock()
		ws := table[key]
		for i, cand := range ws {
			if cand == w {
				table[key] = append(ws[:i], ws[i+1:]...)
				if len(table[key]) == 0 {
					delete(table, key)
				}
				break
			}
		}
		s.mu.Unlock()
		_ = bc.send(bootReply{ID: id, OK: false})
	})
	table[key] = append(table[key], w)
}

// BootClient is a child process's connection to the BootServer. It
// implements pmix.Runtime, so a pmix.Server runs on it unchanged.
type BootClient struct {
	conn net.Conn
	node int
	np   int

	handler   ServerHandler
	handlerMu sync.RWMutex //gompilint:lockorder rank=15

	mu      sync.Mutex //gompilint:lockorder rank=16
	pending map[uint64]chan bootReply
	dead    error

	encMu sync.Mutex //gompilint:lockorder rank=18
	enc   *gob.Encoder

	nextID atomic.Uint64
}

// DialBoot connects to the parent's rendezvous service and registers this
// process as node (with PPN=1, node == rank).
func DialBoot(addr string, node, np int) (*BootClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("prrte: boot dial %q: %w", addr, err)
	}
	c := &BootClient{
		conn:    conn,
		node:    node,
		np:      np,
		pending: make(map[uint64]chan bootReply),
		enc:     gob.NewEncoder(conn),
	}
	go c.read()
	// The hello reply doubles as the registration barrier: once it returns,
	// broadcasts and notifies reach this process.
	if _, err := c.call(bootMsg{Kind: bootHello, Node: node}, defaultBootTimeout); err != nil {
		conn.Close()
		return nil, fmt.Errorf("prrte: boot hello: %w", err)
	}
	return c, nil
}

// Close tears down the connection; outstanding calls fail.
func (c *BootClient) Close() { c.conn.Close() }

// read is the single receiver: correlated replies route to their waiters,
// ID-0 pushes are events for the attached server.
func (c *BootClient) read() {
	dec := gob.NewDecoder(c.conn)
	for {
		var r bootReply
		if err := dec.Decode(&r); err != nil {
			c.fail(fmt.Errorf("prrte: boot connection lost: %w", err))
			return
		}
		if r.ID == 0 {
			c.handlerMu.RLock()
			h := c.handler
			c.handlerMu.RUnlock()
			if h != nil && r.Event != nil {
				h.HandleEvent(r.Event)
			}
			continue
		}
		c.mu.Lock()
		ch := c.pending[r.ID]
		delete(c.pending, r.ID)
		c.mu.Unlock()
		if ch != nil {
			ch <- r
		}
	}
}

// fail poisons the client: every outstanding and future call errors.
func (c *BootClient) fail(err error) {
	c.mu.Lock()
	if c.dead == nil {
		c.dead = err
	}
	pending := c.pending
	c.pending = make(map[uint64]chan bootReply)
	c.mu.Unlock()
	for _, ch := range pending {
		ch <- bootReply{Err: err.Error()}
	}
}

// post sends a fire-and-forget message.
func (c *BootClient) post(msg bootMsg) error {
	c.mu.Lock()
	dead := c.dead
	c.mu.Unlock()
	if dead != nil {
		return dead
	}
	c.encMu.Lock()
	defer c.encMu.Unlock()
	return c.enc.Encode(msg)
}

// call sends a correlated request and waits for its reply.
func (c *BootClient) call(msg bootMsg, timeout time.Duration) (bootReply, error) {
	if timeout <= 0 {
		timeout = defaultBootTimeout
	}
	msg.ID = c.nextID.Add(1)
	msg.TimeoutMs = int64(timeout / time.Millisecond)
	ch := make(chan bootReply, 1)

	c.mu.Lock()
	if c.dead != nil {
		err := c.dead
		c.mu.Unlock()
		return bootReply{}, err
	}
	c.pending[msg.ID] = ch
	c.mu.Unlock()

	c.encMu.Lock()
	err := c.enc.Encode(msg)
	c.encMu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, msg.ID)
		c.mu.Unlock()
		return bootReply{}, err
	}

	// The parent enforces the deadline for parked operations; this local
	// timer (with slack) only guards against a wedged parent.
	timer := time.NewTimer(timeout + 5*time.Second)
	defer timer.Stop()
	select {
	case r := <-ch:
		if r.Err != "" {
			return bootReply{}, errors.New(r.Err)
		}
		return r, nil
	case <-timer.C:
		c.mu.Lock()
		delete(c.pending, msg.ID)
		c.mu.Unlock()
		return bootReply{}, fmt.Errorf("%w: boot %s", ErrTimeout, msg.Kind)
	}
}

// --- pmix.Runtime ---

// Node returns this process's node index (== rank in process mode).
func (c *BootClient) Node() int { return c.node }

// AttachServer installs the PMIx server for event pushes.
func (c *BootClient) AttachServer(h ServerHandler) {
	c.handlerMu.Lock()
	c.handler = h
	c.handlerMu.Unlock()
}

// RPCDelay is a no-op: in process mode the real wire is the cost.
func (c *BootClient) RPCDelay() {}

// Profile returns a zero-delay profile — process mode measures real time,
// it does not model it.
func (c *BootClient) Profile() topo.Profile { return topo.Loopback(1) }

// Fetch performs a direct-modex read via the parent. Unlike the simulated
// daemon, the parent parks unresolved fetches until the owning child's
// modex push arrives, absorbing cross-child publish/fetch races.
func (c *BootClient) Fetch(node int, key string, timeout time.Duration) ([]byte, bool, error) {
	r, err := c.call(bootMsg{Kind: bootFetch, Node: c.node, Key: key, Wait: true}, timeout)
	if err != nil {
		return nil, false, err
	}
	return r.Val, r.OK, nil
}

// Exchange contributes to a collective and blocks until every participant
// node has arrived. The abort channel is ignored in process mode: the
// launcher-side exchange relies on its timeout, and respawn re-admission is
// a simulator-mode feature for now.
func (c *BootClient) Exchange(opKey string, participants []int, local []byte, timeout time.Duration, abort <-chan struct{}) (map[int][]byte, error) {
	r, err := c.call(bootMsg{Kind: bootExchange, Node: c.node, Key: opKey, Val: local, Participants: participants}, timeout)
	if err != nil {
		return nil, err
	}
	return r.Map, nil
}

// AllocPGCID obtains a fresh group context ID from the parent.
func (c *BootClient) AllocPGCID(groupName string, members []int, timeout time.Duration) (uint64, error) {
	r, err := c.call(bootMsg{Kind: bootPGCID, Node: c.node, Name: groupName, Members: members}, timeout)
	if err != nil {
		return 0, err
	}
	return r.N, nil
}

// QueryPsets returns the parent's pset registry.
func (c *BootClient) QueryPsets(timeout time.Duration) (map[string][]int, error) {
	r, err := c.call(bootMsg{Kind: bootQuery, Node: c.node}, timeout)
	if err != nil {
		return nil, err
	}
	return r.Psets, nil
}

// UpdatePset replaces a pset's membership.
func (c *BootClient) UpdatePset(name string, members []int) error {
	return c.post(bootMsg{Kind: bootUpdatePs, Node: c.node, Name: name, Members: members})
}

// DeregisterPset removes a pset.
func (c *BootClient) DeregisterPset(name string) error {
	return c.post(bootMsg{Kind: bootDeregPs, Node: c.node, Name: name})
}

// BroadcastEvent delivers an event to every process, this one included.
func (c *BootClient) BroadcastEvent(data []byte) {
	_ = c.post(bootMsg{Kind: bootBcast, Node: c.node, Val: data})
}

// NotifyNode delivers an event to one process.
func (c *BootClient) NotifyNode(node int, data []byte) error {
	return c.post(bootMsg{Kind: bootNotify, Node: node, Val: data})
}

// NoteDeadRank is a no-op in process mode: the launcher's watchdog learns of
// child deaths directly from wait status, not from peer reports.
func (c *BootClient) NoteDeadRank(rank int) {}

// NoteRevivedRank is a no-op in process mode (respawn is simulator-only).
func (c *BootClient) NoteRevivedRank(rank int) {}

// PublishGlobal stores a key in the parent's name service.
func (c *BootClient) PublishGlobal(key string, value []byte) error {
	return c.post(bootMsg{Kind: bootPublish, Node: c.node, Key: key, Val: value})
}

// LookupGlobal retrieves a published key; with timeout > 0 it waits at the
// parent for the key to appear, mirroring Daemon.LookupGlobal. A deadline
// miss returns (nil, false, nil), matching the daemon's contract.
func (c *BootClient) LookupGlobal(key string, timeout time.Duration) ([]byte, bool, error) {
	r, err := c.call(bootMsg{Kind: bootLookup, Node: c.node, Key: key, Wait: timeout > 0}, timeout)
	if err != nil {
		if errors.Is(err, ErrTimeout) {
			return nil, false, nil
		}
		return nil, false, err
	}
	return r.Val, r.OK, nil
}

// UnpublishGlobal removes a published key.
func (c *BootClient) UnpublishGlobal(key string) error {
	return c.post(bootMsg{Kind: bootUnpublish, Node: c.node, Key: key})
}

// PublishModex pushes a rank's committed modex data to the parent, where
// other processes' fetches are answered. TCP ordering plus the parent's
// serial per-connection processing guarantee the push is visible before any
// collective contribution this process sends afterwards.
func (c *BootClient) PublishModex(rank int, kv map[string][]byte) {
	if len(kv) == 0 {
		return
	}
	_ = c.post(bootMsg{Kind: bootModex, Node: rank, KV: kv})
}
