package prrte

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"

	"gompi/internal/simnet"
	"gompi/internal/topo"
)

func chaosDVM(t *testing.T, nodes int) *DVM {
	t.Helper()
	dvm := NewDVM(simnet.NewFabric(topo.New(topo.Loopback(4), nodes)))
	t.Cleanup(func() {
		dvm.Fabric().SetFaultPlan(nil)
		dvm.Fabric().Heal()
		dvm.Shutdown()
	})
	return dvm
}

// An all-to-all where roughly a third of the control messages vanish must
// still converge: the per-round Want re-offers recover both a dropped send
// of ours and a dropped send of theirs.
func TestChaosExchangeSurvivesDroppedContributions(t *testing.T) {
	const nodes = 4
	dvm := chaosDVM(t, nodes)
	dvm.Fabric().SetFaultPlan(&simnet.FaultPlan{Seed: 42, Classes: simnet.FaultCtrl, Drop: 0.3})

	participants := []int{0, 1, 2, 3}
	var wg sync.WaitGroup
	results := make([]map[int][]byte, nodes)
	errs := make([]error, nodes)
	for n := 0; n < nodes; n++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			results[n], errs[n] = dvm.Daemon(n).Exchange("lossy-op", participants, []byte{byte(n)}, 10*time.Second, nil)
		}(n)
	}
	wg.Wait()
	for n := 0; n < nodes; n++ {
		if errs[n] != nil {
			t.Fatalf("daemon %d: %v", n, errs[n])
		}
		if len(results[n]) != nodes {
			t.Fatalf("daemon %d: %d contributions, want %d", n, len(results[n]), nodes)
		}
		for p := 0; p < nodes; p++ {
			if !bytes.Equal(results[n][p], []byte{byte(p)}) {
				t.Fatalf("daemon %d: contribution from %d = %v", n, p, results[n][p])
			}
		}
	}
	if s := dvm.Fabric().FaultStats(); s.Dropped == 0 {
		t.Fatal("no control message was dropped; the plan never engaged")
	}
}

// The unrecoverable case before the completed-op cache: daemon 1's
// contribution to daemon 0 is lost, and daemon 1 completes the operation
// (it received everything) and deletes its pending state. Daemon 0's Want
// re-request must be served from daemon 1's completed cache.
func TestChaosExchangeLateAskerServedFromCompletedCache(t *testing.T) {
	dvm := chaosDVM(t, 2)
	participants := []int{0, 1}

	res0 := make(chan map[int][]byte, 1)
	err0 := make(chan error, 1)
	go func() {
		r, err := dvm.Daemon(0).Exchange("cache-op", participants, []byte("zero"), 5*time.Second, nil)
		res0 <- r
		err0 <- err
	}()
	time.Sleep(20 * time.Millisecond) // daemon 0's contribution reaches daemon 1 clean

	// Eat daemon 1's contribution on its way to daemon 0; daemon 1 itself
	// already holds both contributions and completes instantly.
	dvm.Fabric().SetFaultPlan(&simnet.FaultPlan{Seed: 7, Classes: simnet.FaultCtrl, Drop: 1.0})
	r1, err := dvm.Daemon(1).Exchange("cache-op", participants, []byte("one"), 5*time.Second, nil)
	if err != nil {
		t.Fatalf("daemon 1: %v", err)
	}
	if !bytes.Equal(r1[0], []byte("zero")) || !bytes.Equal(r1[1], []byte("one")) {
		t.Fatalf("daemon 1 result = %v", r1)
	}
	dvm.Fabric().SetFaultPlan(nil)

	// Daemon 0's next retry round asks daemon 1 (Want), which has only the
	// completed cache left to answer from.
	if err := <-err0; err != nil {
		t.Fatalf("daemon 0: %v", err)
	}
	r0 := <-res0
	if !bytes.Equal(r0[1], []byte("one")) {
		t.Fatalf("daemon 0 recovered contribution = %v, want %q", r0[1], "one")
	}

	// A replay of a completed operation is served from the cache too (a
	// PMIx-level retry after a peer-side timeout reuses the op key).
	again, err := dvm.Daemon(1).Exchange("cache-op", participants, []byte("one"), time.Second, nil)
	if err != nil || !bytes.Equal(again[0], []byte("zero")) {
		t.Fatalf("replayed exchange: %v, %v", again, err)
	}
}

// Request/response RPCs reissue on reply timeout: with 40% of control
// messages dropped, PGCID allocation and pset queries still succeed.
func TestChaosRPCRetryUnderDrops(t *testing.T) {
	dvm := chaosDVM(t, 2)
	dvm.RegisterPset("app/world", []int{0, 1, 2, 3})
	dvm.Fabric().SetFaultPlan(&simnet.FaultPlan{Seed: 99, Classes: simnet.FaultCtrl, Drop: 0.4})

	id, err := dvm.Daemon(1).AllocPGCID("", nil, 5*time.Second)
	if err != nil || id == 0 {
		t.Fatalf("AllocPGCID under drops: id=%d err=%v", id, err)
	}
	psets, err := dvm.Daemon(1).QueryPsets(5 * time.Second)
	if err != nil {
		t.Fatalf("QueryPsets under drops: %v", err)
	}
	if len(psets["app/world"]) != 4 {
		t.Fatalf("pset registry = %v", psets)
	}
	if s := dvm.Fabric().FaultStats(); s.Dropped == 0 {
		t.Fatal("no control message was dropped; the plan never engaged")
	}
}

// A partitioned daemon degrades into a bounded, deterministic ErrTimeout —
// not an unbounded hang — and recovers after Heal.
func TestChaosRPCTimesOutAcrossPartitionThenHeals(t *testing.T) {
	dvm := chaosDVM(t, 2)
	dvm.Fabric().Partition([]int{0}, []int{1})

	start := time.Now()
	_, err := dvm.Daemon(1).AllocPGCID("", nil, 300*time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("AllocPGCID across partition err = %v, want ErrTimeout", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("timeout took %v; the deadline was not honored", elapsed)
	}
	if _, err := dvm.Daemon(1).Exchange("split", []int{0, 1}, nil, 200*time.Millisecond, nil); !errors.Is(err, ErrTimeout) {
		t.Fatalf("Exchange across partition err = %v, want ErrTimeout", err)
	}

	dvm.Fabric().Heal()
	if id, err := dvm.Daemon(1).AllocPGCID("", nil, 5*time.Second); err != nil || id == 0 {
		t.Fatalf("AllocPGCID after heal: id=%d err=%v", id, err)
	}
}
