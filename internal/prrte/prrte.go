// Package prrte is a Go analogue of the PMIx Reference RunTime Environment:
// the distributed virtual machine (DVM) of per-node daemons that hosts PMIx
// servers on systems without native PMIx support.
//
// Each simulated node runs one Daemon. Daemons provide the services the
// paper's prototype relied on (§III-A):
//
//   - a generalized all-to-all data exchange between the daemons of the
//     nodes participating in an operation (used by PMIx fences and the
//     three-stage hierarchical group construct/destruct);
//   - allocation of Process Group Context IDs (PGCIDs) — unique, non-zero
//     64-bit IDs handed out by the resource manager (the master daemon);
//   - a registry of named process sets (static, from the launch, and
//     dynamic, from PMIx group construction) answering pset queries;
//   - direct fetch of published data from a remote node's server ("direct
//     modex", used when a process is discovered on first communication);
//   - broadcast of runtime events (e.g. process-failure notifications).
package prrte

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"gompi/internal/simnet"
	"gompi/internal/topo"
)

// ErrTimeout is returned when a collective daemon operation does not
// complete within its deadline (e.g. a participant never joined).
var ErrTimeout = errors.New("prrte: operation timed out")

// ErrShutdown is returned when the DVM has been torn down.
var ErrShutdown = errors.New("prrte: DVM is shut down")

// ErrDeadParticipant is returned when a control-plane operation is aborted
// because it depends on a rank the resource manager knows has terminated.
// Unlike ErrTimeout it is not retryable: waiting longer cannot produce a
// contribution from a dead process.
var ErrDeadParticipant = errors.New("prrte: participant terminated")

const ctrlMsgOverhead = 32 // modeled header bytes for daemon control traffic

// ServerHandler is implemented by the PMIx server hosted on a daemon; the
// daemon calls it to service inbound requests from remote daemons.
type ServerHandler interface {
	// HandleFetch returns locally published data for key, if present.
	HandleFetch(key string) ([]byte, bool)
	// HandleEvent delivers a broadcast runtime event.
	HandleEvent(data []byte)
}

// JobMap describes where the ranks of a launched job live. Ranks are mapped
// onto nodes in contiguous blocks of PPN, matching the block mapping used
// for the paper's runs (fully-subscribed nodes).
type JobMap struct {
	NP  int // total ranks
	PPN int // ranks per node
}

// NodeOf returns the node hosting a rank.
func (m JobMap) NodeOf(rank int) int { return rank / m.PPN }

// Nodes returns how many nodes the job spans.
func (m JobMap) Nodes() int { return (m.NP + m.PPN - 1) / m.PPN }

// RanksOn lists the ranks hosted on one node, in ascending order.
func (m JobMap) RanksOn(node int) []int {
	lo := node * m.PPN
	hi := lo + m.PPN
	if hi > m.NP {
		hi = m.NP
	}
	if lo >= hi {
		return nil
	}
	out := make([]int, 0, hi-lo)
	for r := lo; r < hi; r++ {
		out = append(out, r)
	}
	return out
}

// LocalCount returns the number of ranks on a node.
func (m JobMap) LocalCount(node int) int { return len(m.RanksOn(node)) }

// control messages exchanged between daemons.
type (
	xchgMsg struct {
		OpKey string
		Node  int
		Data  []byte
		// Want marks a retry round: the sender is still missing this
		// daemon's contribution for OpKey and asks for it to be (re)sent,
		// either from the pending op or from the completed-op cache.
		Want bool
	}
	pgcidReq struct {
		ReplyTo simnet.Addr
		Name    string // group name to register alongside the ID ("" = none)
		Members []int
	}
	pgcidResp struct {
		ID uint64
	}
	psetDeregister struct {
		Name string
	}
	psetUpdate struct {
		Name    string
		Members []int
	}
	queryReq struct {
		ReplyTo simnet.Addr
	}
	queryResp struct {
		Names map[string][]int
	}
	fetchReq struct {
		ReplyTo simnet.Addr
		Key     string
	}
	fetchResp struct {
		Key  string
		Data []byte
		OK   bool
	}
	publishMsg struct {
		Key   string
		Value []byte
	}
	unpublishMsg struct {
		Key string
	}
	lookupReq struct {
		ReplyTo simnet.Addr
		Key     string
		Wait    bool
	}
	lookupResp struct {
		Value []byte
		OK    bool
	}
	eventMsg struct {
		Data []byte
		// Root and Relay drive the binomial broadcast routing: relayed
		// events are re-forwarded to this daemon's children in the tree
		// rooted at Root. Targeted notifications set Relay false.
		Root  int
		Relay bool
	}
)

// pendingOp accumulates all-to-all contributions for one operation key.
type pendingOp struct {
	contribs map[int][]byte
	waiters  []chan struct{}
}

// Daemon is one prted: the runtime agent on a single node.
type Daemon struct {
	dvm  *DVM
	node int
	ep   *simnet.Endpoint

	mu  sync.Mutex //gompilint:lockorder rank=12
	ops map[string]*pendingOp
	// completed is a bounded ring of finished exchanges (full result kept)
	// so a peer that missed this daemon's contribution can still recover it
	// after the op's pending state is gone; completedOrder drives eviction.
	completed      map[string]map[int][]byte
	completedOrder []string

	handler   ServerHandler
	handlerMu sync.RWMutex //gompilint:lockorder rank=10
}

// Node returns the node index this daemon manages.
func (d *Daemon) Node() int { return d.node }

// Fabric returns the fabric this daemon communicates over.
func (d *Daemon) Fabric() *simnet.Fabric { return d.dvm.fabric }

// RPCDelay charges the modeled client-to-server RPC cost (pmix.Runtime).
func (d *Daemon) RPCDelay() { d.dvm.fabric.RPCDelay() }

// Profile returns the cluster's timing profile (pmix.Runtime).
func (d *Daemon) Profile() topo.Profile { return d.dvm.fabric.Cluster().Profile }

// PublishModex is a no-op for the in-process daemon (pmix.Runtime): remote
// servers fetch committed data on demand through the ServerHandler, so there
// is nothing to mirror.
func (d *Daemon) PublishModex(rank int, kv map[string][]byte) {}

// Addr returns the daemon's fabric address.
func (d *Daemon) Addr() simnet.Addr { return d.ep.Addr() }

// NoteDeadRank records a terminated rank with the resource manager
// (pmix.Runtime). In simulator mode the DVM state is shared memory, so the
// note is visible to every daemon immediately.
func (d *Daemon) NoteDeadRank(rank int) { d.dvm.noteDeadRank(rank) }

// NoteRevivedRank clears a rank from the terminated set after a respawn
// re-admitted it (pmix.Runtime).
func (d *Daemon) NoteRevivedRank(rank int) { d.dvm.noteRevivedRank(rank) }

// RankDead reports whether the resource manager knows rank has terminated.
func (d *Daemon) RankDead(rank int) bool { return d.dvm.rankDead(rank) }

// AttachServer registers the PMIx server handler for inbound requests.
func (d *Daemon) AttachServer(h ServerHandler) {
	d.handlerMu.Lock()
	d.handler = h
	d.handlerMu.Unlock()
}

func (d *Daemon) run() {
	for {
		m, err := d.ep.Recv(0)
		if err != nil {
			return // endpoint closed: DVM shutdown
		}
		switch msg := m.Ctrl.(type) {
		case xchgMsg:
			d.handleXchg(msg)
		case pgcidReq:
			// Only the master daemon receives these.
			id := d.dvm.allocPGCID()
			if msg.Name != "" {
				d.dvm.registerPset(msg.Name, msg.Members)
			}
			_ = d.ep.Send(msg.ReplyTo, simnet.Message{Ctrl: pgcidResp{ID: id}, Size: ctrlMsgOverhead})
		case psetDeregister:
			d.dvm.deregisterPset(msg.Name)
		case psetUpdate:
			d.dvm.registerPset(msg.Name, msg.Members)
		case publishMsg:
			d.dvm.publish(msg.Key, msg.Value)
		case unpublishMsg:
			d.dvm.unpublish(msg.Key)
		case lookupReq:
			if v, ok := d.dvm.lookup(msg.Key); ok {
				_ = d.ep.Send(msg.ReplyTo, simnet.Message{Ctrl: lookupResp{Value: v, OK: true}, Size: ctrlMsgOverhead + len(v)})
			} else if msg.Wait {
				d.dvm.addLookupWaiter(msg.Key, msg.ReplyTo, d)
			} else {
				_ = d.ep.Send(msg.ReplyTo, simnet.Message{Ctrl: lookupResp{}, Size: ctrlMsgOverhead})
			}
		case queryReq:
			names := d.dvm.psetSnapshot()
			_ = d.ep.Send(msg.ReplyTo, simnet.Message{Ctrl: queryResp{Names: names}, Size: ctrlMsgOverhead + 16*len(names)})
		case fetchReq:
			var (
				data []byte
				ok   bool
			)
			d.handlerMu.RLock()
			h := d.handler
			d.handlerMu.RUnlock()
			if h != nil {
				data, ok = h.HandleFetch(msg.Key)
			}
			_ = d.ep.Send(msg.ReplyTo, simnet.Message{
				Ctrl: fetchResp{Key: msg.Key, Data: data, OK: ok},
				Size: ctrlMsgOverhead + len(data),
			})
		case eventMsg:
			if msg.Relay {
				d.relayEvent(msg)
			}
			d.handlerMu.RLock()
			h := d.handler
			d.handlerMu.RUnlock()
			if h != nil {
				h.HandleEvent(msg.Data)
			}
		}
	}
}

// handleXchg processes an inbound all-to-all message: record the peer's
// contribution, and if the peer flagged Want, re-offer our own contribution
// (from the pending op or the completed cache) so a dropped send converges.
func (d *Daemon) handleXchg(msg xchgMsg) {
	own, resend := d.recordContribution(msg)
	if resend && msg.Node != d.node {
		_ = d.ep.Send(d.dvm.daemonAddr(msg.Node), simnet.Message{
			Ctrl: xchgMsg{OpKey: msg.OpKey, Node: d.node, Data: own},
			Size: ctrlMsgOverhead + len(own),
		})
	}
}

// recordContribution stores one peer contribution and reports whether this
// daemon should answer a Want request with its own contribution. A
// contribution for an operation this daemon already completed is stale and
// ignored — recreating pending state for it would leak — but the Want side
// is still served from the completed cache.
func (d *Daemon) recordContribution(msg xchgMsg) (own []byte, resend bool) {
	d.mu.Lock()
	if res, done := d.completed[msg.OpKey]; done {
		if msg.Want {
			own, resend = res[d.node], true
		}
		d.mu.Unlock()
		return own, resend
	}
	op := d.ops[msg.OpKey]
	if op == nil {
		op = &pendingOp{contribs: make(map[int][]byte)}
		d.ops[msg.OpKey] = op
	}
	op.contribs[msg.Node] = msg.Data
	if msg.Want {
		own, resend = op.contribs[d.node]
	}
	waiters := op.waiters
	op.waiters = nil
	d.mu.Unlock()
	for _, w := range waiters {
		close(w)
	}
	return own, resend
}

// rememberCompletedLocked moves a finished exchange into the completed ring,
// evicting the oldest entry beyond completedOpCache. Caller holds d.mu.
func (d *Daemon) rememberCompletedLocked(opKey string, result map[int][]byte) {
	if d.completed == nil {
		d.completed = make(map[string]map[int][]byte)
	}
	if _, ok := d.completed[opKey]; !ok {
		d.completedOrder = append(d.completedOrder, opKey)
		for len(d.completedOrder) > completedOpCache {
			delete(d.completed, d.completedOrder[0])
			d.completedOrder = d.completedOrder[1:]
		}
	}
	d.completed[opKey] = result
}

// replyEndpoint allocates a transient endpoint for one request/response
// round-trip. Using a fresh endpoint keeps responses from interleaving with
// the daemon's main loop traffic.
func (d *Daemon) replyEndpoint() *simnet.Endpoint {
	return d.dvm.fabric.NewEndpoint(d.node)
}

// Exchange performs an all-to-all among the daemons of the participant
// nodes for operation opKey: it contributes local data and blocks until
// every participant's contribution has arrived or the timeout expires
// (timeout <= 0 waits forever). The returned map is keyed by node.
//
// abort, when non-nil, cancels the wait early with ErrDeadParticipant: the
// PMIx layer closes it when it learns a participant rank died, so a
// construct over a set containing a dead process fails in event-delivery
// time instead of burning the full timeout.
//
// opKey must be unique per logical collective instance; PMIx layers a
// sequence number into it.
func (d *Daemon) Exchange(opKey string, participants []int, local []byte, timeout time.Duration, abort <-chan struct{}) (map[int][]byte, error) {
	if d.dvm.isShutdown() {
		return nil, ErrShutdown
	}
	// A re-run of an operation this daemon already completed (e.g. a PMIx
	// retry after a peer-side timeout) is served from the completed cache:
	// the pending state is gone and the other participants may have moved
	// on, so re-exchanging could never converge.
	d.mu.Lock()
	if res, done := d.completed[opKey]; done {
		out := make(map[int][]byte, len(res))
		for k, v := range res {
			out[k] = v
		}
		d.mu.Unlock()
		return out, nil
	}
	d.mu.Unlock()

	// Send our contribution to every other participant daemon.
	for _, n := range participants {
		if n == d.node {
			continue
		}
		msg := simnet.Message{
			Ctrl: xchgMsg{OpKey: opKey, Node: d.node, Data: local},
			Size: ctrlMsgOverhead + len(local),
		}
		if err := d.ep.Send(d.dvm.daemonAddr(n), msg); err != nil {
			return nil, fmt.Errorf("prrte: exchange %q: daemon %d unreachable: %w", opKey, n, err)
		}
	}
	// Record our own contribution, then wait for the others. The wait runs
	// in rounds: when a round expires without completion, re-offer our
	// contribution to the still-missing peers with Want set, covering both
	// a dropped send of ours and a dropped send of theirs (peers answer
	// Want from pending state or their completed cache).
	d.recordContribution(xchgMsg{OpKey: opKey, Node: d.node, Data: local})

	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	}
	bo := newBackoff(exchangeResendBase, exchangeResendMax)
	for {
		d.mu.Lock()
		op := d.ops[opKey]
		if op == nil {
			op = &pendingOp{contribs: make(map[int][]byte)}
			d.ops[opKey] = op
		}
		if len(op.contribs) >= len(participants) {
			out := make(map[int][]byte, len(op.contribs))
			for k, v := range op.contribs {
				out[k] = v
			}
			delete(d.ops, opKey)
			d.rememberCompletedLocked(opKey, op.contribs)
			d.mu.Unlock()
			return out, nil
		}
		w := make(chan struct{})
		op.waiters = append(op.waiters, w)
		var missing []int
		for _, n := range participants {
			if _, ok := op.contribs[n]; !ok && n != d.node {
				missing = append(missing, n)
			}
		}
		d.mu.Unlock()

		round := bo.next()
		if timeout > 0 {
			remaining := time.Until(deadline)
			if remaining <= 0 {
				return nil, fmt.Errorf("prrte: exchange %q: %w", opKey, ErrTimeout)
			}
			if round > remaining {
				round = remaining
			}
		}
		timer := time.NewTimer(round)
		select {
		case <-w:
			timer.Stop()
		case <-abort:
			timer.Stop()
			return nil, fmt.Errorf("prrte: exchange %q: %w", opKey, ErrDeadParticipant)
		case <-timer.C:
			if timeout > 0 && time.Until(deadline) <= 0 {
				return nil, fmt.Errorf("prrte: exchange %q: %w", opKey, ErrTimeout)
			}
			for _, n := range missing {
				// A re-offer failing to send means the peer daemon's endpoint
				// is gone (node killed or DVM shut down) — permanent, so fail
				// now rather than resending until the deadline.
				if err := d.ep.Send(d.dvm.daemonAddr(n), simnet.Message{
					Ctrl: xchgMsg{OpKey: opKey, Node: d.node, Data: local, Want: true},
					Size: ctrlMsgOverhead + len(local),
				}); err != nil {
					return nil, fmt.Errorf("prrte: exchange %q: daemon %d unreachable: %w", opKey, n, err)
				}
			}
		}
	}
}

// AllocPGCID obtains a fresh process-group context ID from the resource
// manager (master daemon), optionally registering a named pset for the
// group at the same time. The round-trip to the master is charged on the
// fabric, matching the paper's observation that acquiring a PGCID involves
// inter-node messaging. The round-trip is retried on reply timeout within
// the given deadline (<= 0 applies the default); a reissued request at
// worst burns an extra ID, which only needs to be unique, not dense.
func (d *Daemon) AllocPGCID(groupName string, members []int, timeout time.Duration) (uint64, error) {
	if d.dvm.isShutdown() {
		return 0, ErrShutdown
	}
	if d.node == d.dvm.masterNode {
		// Local to the RM: no wire round-trip, just the RPC overhead.
		d.dvm.fabric.RPCDelay()
		id := d.dvm.allocPGCID()
		if groupName != "" {
			d.dvm.registerPset(groupName, members)
		}
		return id, nil
	}
	m, err := d.rpcRetry(timeout, false, nil, func(replyTo simnet.Addr) error {
		req := pgcidReq{ReplyTo: replyTo, Name: groupName, Members: members}
		return d.ep.Send(d.dvm.daemonAddr(d.dvm.masterNode), simnet.Message{Ctrl: req, Size: ctrlMsgOverhead + 8*len(members)})
	})
	if err != nil {
		return 0, fmt.Errorf("prrte: PGCID request: %w", err)
	}
	return m.Ctrl.(pgcidResp).ID, nil
}

// UpdatePset replaces a pset's membership at the resource manager, used
// when a process departs a group asynchronously.
func (d *Daemon) UpdatePset(name string, members []int) error {
	if d.node == d.dvm.masterNode {
		d.dvm.registerPset(name, members)
		return nil
	}
	return d.ep.Send(d.dvm.daemonAddr(d.dvm.masterNode), simnet.Message{Ctrl: psetUpdate{Name: name, Members: members}, Size: ctrlMsgOverhead + 8*len(members)})
}

// DeregisterPset removes a dynamic pset (group destruct).
func (d *Daemon) DeregisterPset(name string) error {
	if d.node == d.dvm.masterNode {
		d.dvm.deregisterPset(name)
		return nil
	}
	return d.ep.Send(d.dvm.daemonAddr(d.dvm.masterNode), simnet.Message{Ctrl: psetDeregister{Name: name}, Size: ctrlMsgOverhead})
}

// QueryPsets returns the authoritative pset registry (name -> member ranks)
// from the resource manager. The query is an idempotent read, retried on
// reply timeout within the given deadline (<= 0 applies the default).
func (d *Daemon) QueryPsets(timeout time.Duration) (map[string][]int, error) {
	if d.dvm.isShutdown() {
		return nil, ErrShutdown
	}
	if d.node == d.dvm.masterNode {
		d.dvm.fabric.RPCDelay()
		return d.dvm.psetSnapshot(), nil
	}
	m, err := d.rpcRetry(timeout, false, nil, func(replyTo simnet.Addr) error {
		return d.ep.Send(d.dvm.daemonAddr(d.dvm.masterNode), simnet.Message{Ctrl: queryReq{ReplyTo: replyTo}, Size: ctrlMsgOverhead})
	})
	if err != nil {
		return nil, fmt.Errorf("prrte: pset query: %w", err)
	}
	return m.Ctrl.(queryResp).Names, nil
}

// Fetch retrieves data published under key on another node's server.
func (d *Daemon) Fetch(node int, key string, timeout time.Duration) ([]byte, bool, error) {
	if d.dvm.isShutdown() {
		return nil, false, ErrShutdown
	}
	if node == d.node {
		d.handlerMu.RLock()
		h := d.handler
		d.handlerMu.RUnlock()
		if h == nil {
			return nil, false, nil
		}
		data, ok := h.HandleFetch(key)
		return data, ok, nil
	}
	// A modex fetch names the rank that published the data; once that rank
	// is known dead, retrying against its (possibly gone) node is hopeless.
	var hopeless func() error
	var keyRank int
	if _, err := fmt.Sscanf(key, "modex/%d/", &keyRank); err == nil {
		hopeless = func() error {
			if d.dvm.rankDead(keyRank) {
				return fmt.Errorf("prrte: fetch %q: rank %d: %w", key, keyRank, ErrDeadParticipant)
			}
			return nil
		}
	}
	m, err := d.rpcRetry(timeout, false, hopeless, func(replyTo simnet.Addr) error {
		return d.ep.Send(d.dvm.daemonAddr(node), simnet.Message{Ctrl: fetchReq{ReplyTo: replyTo, Key: key}, Size: ctrlMsgOverhead + len(key)})
	})
	if err != nil {
		return nil, false, fmt.Errorf("prrte: fetch %q from node %d: %w", key, node, err)
	}
	fr := m.Ctrl.(fetchResp)
	return fr.Data, fr.OK, nil
}

// BroadcastEvent delivers an opaque event blob to the server handler on
// every node, including this one. Delivery is routed along a binomial tree
// rooted at the originating daemon — the same O(log N) relay structure
// PRRTE's grpcomm uses — so no single daemon sends more than log2(N)
// messages.
func (d *Daemon) BroadcastEvent(data []byte) {
	if d.dvm.isShutdown() {
		return
	}
	d.relayEvent(eventMsg{Data: data, Root: d.node, Relay: true})
	d.handlerMu.RLock()
	h := d.handler
	d.handlerMu.RUnlock()
	if h != nil {
		// Deliver asynchronously like a real event: the caller must not
		// block on its own handler.
		go h.HandleEvent(data)
	}
}

// relayEvent forwards a routed event to this daemon's children in the
// binomial tree rooted at msg.Root.
func (d *Daemon) relayEvent(msg eventMsg) {
	n := d.dvm.numNodes()
	vrank := (d.node - msg.Root + n) % n
	for mask := 1; mask < n; mask <<= 1 {
		if vrank&mask != 0 {
			break
		}
		child := vrank + mask
		if child >= n {
			continue
		}
		real := (child + msg.Root) % n
		_ = d.ep.Send(d.dvm.daemonAddr(real), simnet.Message{Ctrl: msg, Size: ctrlMsgOverhead + len(msg.Data)})
	}
}

// PublishGlobal stores a key/value pair in the resource manager's global
// name service.
func (d *Daemon) PublishGlobal(key string, value []byte) error {
	if d.dvm.isShutdown() {
		return ErrShutdown
	}
	if d.node == d.dvm.masterNode {
		d.dvm.publish(key, value)
		return nil
	}
	return d.ep.Send(d.dvm.daemonAddr(d.dvm.masterNode),
		simnet.Message{Ctrl: publishMsg{Key: key, Value: value}, Size: ctrlMsgOverhead + len(key) + len(value)})
}

// LookupGlobal retrieves a globally published value. With timeout > 0 it
// blocks until the key is published or the deadline passes; with
// timeout <= 0 it polls once.
func (d *Daemon) LookupGlobal(key string, timeout time.Duration) ([]byte, bool, error) {
	if d.dvm.isShutdown() {
		return nil, false, ErrShutdown
	}
	wait := timeout > 0
	if d.node == d.dvm.masterNode && !wait {
		v, ok := d.dvm.lookup(key)
		return v, ok, nil
	}
	// A blocking lookup's reply is intentionally withheld until the key is
	// published, so the retried sends only guard against a dropped request;
	// waitFull keeps the reply endpoint listening out to the deadline.
	m, err := d.rpcRetry(timeout, wait, nil, func(replyTo simnet.Addr) error {
		req := lookupReq{ReplyTo: replyTo, Key: key, Wait: wait}
		return d.ep.Send(d.dvm.daemonAddr(d.dvm.masterNode), simnet.Message{Ctrl: req, Size: ctrlMsgOverhead + len(key)})
	})
	if retryable(err) || errors.Is(err, ErrTimeout) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("prrte: lookup %q: %w", key, err)
	}
	lr := m.Ctrl.(lookupResp)
	return lr.Value, lr.OK, nil
}

// UnpublishGlobal removes a key from the global name service.
func (d *Daemon) UnpublishGlobal(key string) error {
	if d.dvm.isShutdown() {
		return ErrShutdown
	}
	if d.node == d.dvm.masterNode {
		d.dvm.unpublish(key)
		return nil
	}
	return d.ep.Send(d.dvm.daemonAddr(d.dvm.masterNode),
		simnet.Message{Ctrl: unpublishMsg{Key: key}, Size: ctrlMsgOverhead + len(key)})
}

// NotifyNode delivers an event blob to the server handler on a single node,
// used for targeted notifications (e.g. asynchronous group invitations).
func (d *Daemon) NotifyNode(node int, data []byte) error {
	if d.dvm.isShutdown() {
		return ErrShutdown
	}
	if node == d.node {
		d.handlerMu.RLock()
		h := d.handler
		d.handlerMu.RUnlock()
		if h != nil {
			go h.HandleEvent(data)
		}
		return nil
	}
	return d.ep.Send(d.dvm.daemonAddr(node), simnet.Message{Ctrl: eventMsg{Data: data}, Size: ctrlMsgOverhead + len(data)})
}

// BroadcastDepth reports the binomial relay depth for n nodes (diagnostic).
func BroadcastDepth(n int) int {
	depth := 0
	for span := 1; span < n; span <<= 1 {
		depth++
	}
	return depth
}

// DVM is the distributed virtual machine: one daemon per node plus the
// resource-manager state held at the master daemon (node 0).
type DVM struct {
	fabric     *simnet.Fabric
	daemons    []*Daemon
	masterNode int

	mu            sync.Mutex //gompilint:lockorder rank=14
	nextPGCID     uint64
	psets         map[string][]int
	published     map[string][]byte
	lookupWaiters map[string][]simnet.Addr
	deadRanks     map[int]bool // ranks the RM knows have terminated
	shutdown      bool
}

// NewDVM starts one daemon per node of the fabric's cluster. The caller
// owns the DVM and must Shutdown it when done.
func NewDVM(fabric *simnet.Fabric) *DVM {
	n := fabric.Cluster().Nodes
	dvm := &DVM{
		fabric:        fabric,
		daemons:       make([]*Daemon, n),
		masterNode:    0,
		nextPGCID:     1, // PGCIDs are guaranteed non-zero
		psets:         make(map[string][]int),
		published:     make(map[string][]byte),
		lookupWaiters: make(map[string][]simnet.Addr),
		deadRanks:     make(map[int]bool),
	}
	for i := 0; i < n; i++ {
		d := &Daemon{
			dvm:  dvm,
			node: i,
			ep:   fabric.NewEndpoint(i),
			ops:  make(map[string]*pendingOp),
		}
		dvm.daemons[i] = d
		go d.run()
	}
	return dvm
}

// Fabric returns the fabric the DVM runs on.
func (v *DVM) Fabric() *simnet.Fabric { return v.fabric }

// Daemon returns the daemon for a node.
func (v *DVM) Daemon(node int) *Daemon { return v.daemons[node] }

// Shutdown stops all daemons. Outstanding operations fail.
func (v *DVM) Shutdown() {
	v.mu.Lock()
	v.shutdown = true
	v.mu.Unlock()
	for _, d := range v.daemons {
		d.ep.Close()
	}
}

func (v *DVM) isShutdown() bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.shutdown
}

func (v *DVM) numNodes() int { return len(v.daemons) }

func (v *DVM) daemonAddr(node int) simnet.Addr { return v.daemons[node].ep.Addr() }

// noteDeadRank / noteRevivedRank maintain the RM's terminated-rank view.
// Every node's PMIx server reports deaths it learns about; the set is the
// ground truth retry loops consult to stop waiting on dead processes.
func (v *DVM) noteDeadRank(rank int) {
	v.mu.Lock()
	v.deadRanks[rank] = true
	v.mu.Unlock()
}

func (v *DVM) noteRevivedRank(rank int) {
	v.mu.Lock()
	delete(v.deadRanks, rank)
	v.mu.Unlock()
}

func (v *DVM) rankDead(rank int) bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.deadRanks[rank]
}

func (v *DVM) allocPGCID() uint64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	id := v.nextPGCID
	v.nextPGCID++
	return id
}

// RegisterPset installs a static process set (from the launch command line,
// e.g. prun --pset ocean:0-15).
func (v *DVM) RegisterPset(name string, members []int) {
	v.registerPset(name, members)
}

func (v *DVM) registerPset(name string, members []int) {
	v.mu.Lock()
	defer v.mu.Unlock()
	cp := make([]int, len(members))
	copy(cp, members)
	sort.Ints(cp)
	v.psets[name] = cp
}

func (v *DVM) deregisterPset(name string) {
	v.mu.Lock()
	defer v.mu.Unlock()
	delete(v.psets, name)
}

// publish stores a global key at the master and releases blocked lookups.
func (v *DVM) publish(key string, value []byte) {
	v.mu.Lock()
	cp := make([]byte, len(value))
	copy(cp, value)
	v.published[key] = cp
	waiters := v.lookupWaiters[key]
	delete(v.lookupWaiters, key)
	master := v.daemons[v.masterNode]
	v.mu.Unlock()
	for _, addr := range waiters {
		_ = master.ep.Send(addr, simnet.Message{Ctrl: lookupResp{Value: cp, OK: true}, Size: ctrlMsgOverhead + len(cp)})
	}
}

func (v *DVM) unpublish(key string) {
	v.mu.Lock()
	delete(v.published, key)
	v.mu.Unlock()
}

func (v *DVM) lookup(key string) ([]byte, bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	val, ok := v.published[key]
	return val, ok
}

func (v *DVM) addLookupWaiter(key string, addr simnet.Addr, d *Daemon) {
	v.mu.Lock()
	// Re-check under the lock: the publish may have raced in.
	if val, ok := v.published[key]; ok {
		v.mu.Unlock()
		_ = d.ep.Send(addr, simnet.Message{Ctrl: lookupResp{Value: val, OK: true}, Size: ctrlMsgOverhead + len(val)})
		return
	}
	v.lookupWaiters[key] = append(v.lookupWaiters[key], addr)
	v.mu.Unlock()
}

func (v *DVM) psetSnapshot() map[string][]int {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make(map[string][]int, len(v.psets))
	for k, mv := range v.psets {
		cp := make([]int, len(mv))
		copy(cp, mv)
		out[k] = cp
	}
	return out
}
