package prrte

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"
)

func bootPair(t *testing.T, np int) (*BootServer, []*BootClient) {
	t.Helper()
	s, err := NewBootServer("127.0.0.1:0")
	if err != nil {
		t.Fatalf("NewBootServer: %v", err)
	}
	t.Cleanup(s.Close)
	clients := make([]*BootClient, np)
	for i := range clients {
		c, err := DialBoot(s.Addr(), i, np)
		if err != nil {
			t.Fatalf("DialBoot(%d): %v", i, err)
		}
		t.Cleanup(c.Close)
		clients[i] = c
	}
	return s, clients
}

type testHandler struct {
	mu     sync.Mutex
	events [][]byte
	gotEv  chan struct{}
}

func newTestHandler() *testHandler {
	return &testHandler{gotEv: make(chan struct{}, 16)}
}

func (h *testHandler) HandleFetch(key string) ([]byte, bool) { return nil, false }

func (h *testHandler) HandleEvent(data []byte) {
	h.mu.Lock()
	h.events = append(h.events, append([]byte(nil), data...))
	h.mu.Unlock()
	h.gotEv <- struct{}{}
}

func (h *testHandler) waitEvent(t *testing.T) []byte {
	t.Helper()
	select {
	case <-h.gotEv:
	case <-time.After(5 * time.Second):
		t.Fatal("no event arrived")
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.events[len(h.events)-1]
}

func TestBootExchange(t *testing.T) {
	_, cs := bootPair(t, 3)
	nodes := []int{0, 1, 2}

	var wg sync.WaitGroup
	results := make([]map[int][]byte, 3)
	errs := make([]error, 3)
	for i, c := range cs {
		wg.Add(1)
		go func(i int, c *BootClient) {
			defer wg.Done()
			results[i], errs[i] = c.Exchange("op-1", nodes, []byte(fmt.Sprintf("node-%d", i)), 5*time.Second, nil)
		}(i, c)
	}
	wg.Wait()
	for i := range cs {
		if errs[i] != nil {
			t.Fatalf("client %d: %v", i, errs[i])
		}
		if len(results[i]) != 3 {
			t.Fatalf("client %d got %d contributions", i, len(results[i]))
		}
		for n := 0; n < 3; n++ {
			if want := fmt.Sprintf("node-%d", n); string(results[i][n]) != want {
				t.Fatalf("client %d: contribution[%d] = %q, want %q", i, n, results[i][n], want)
			}
		}
	}

	// A second exchange under the same key works: the op state was retired.
	wg = sync.WaitGroup{}
	for i, c := range cs {
		wg.Add(1)
		go func(i int, c *BootClient) {
			defer wg.Done()
			results[i], errs[i] = c.Exchange("op-1", nodes, []byte{byte(i)}, 5*time.Second, nil)
		}(i, c)
	}
	wg.Wait()
	for i := range cs {
		if errs[i] != nil {
			t.Fatalf("second exchange, client %d: %v", i, errs[i])
		}
	}
}

func TestBootModexFetchParksUntilPublished(t *testing.T) {
	_, cs := bootPair(t, 2)

	// Client 1 fetches client 0's key before it exists: the parent must
	// park the fetch and answer once the modex push lands.
	type fr struct {
		val []byte
		ok  bool
		err error
	}
	done := make(chan fr, 1)
	go func() {
		v, ok, err := cs[1].Fetch(0, "modex/0/addr", 5*time.Second)
		done <- fr{v, ok, err}
	}()
	time.Sleep(50 * time.Millisecond) // let the fetch park
	cs[0].PublishModex(0, map[string][]byte{"addr": []byte("1.2.3.4:5")})

	r := <-done
	if r.err != nil || !r.ok || !bytes.Equal(r.val, []byte("1.2.3.4:5")) {
		t.Fatalf("parked fetch: val=%q ok=%v err=%v", r.val, r.ok, r.err)
	}

	// A fetch for a key nobody will publish times out as not-found.
	start := time.Now()
	_, ok, err := cs[1].Fetch(0, "modex/0/never", 300*time.Millisecond)
	if err != nil || ok {
		t.Fatalf("fetch of unpublished key: ok=%v err=%v", ok, err)
	}
	if time.Since(start) < 250*time.Millisecond {
		t.Fatal("fetch returned before its deadline")
	}
}

func TestBootPGCIDAndPsets(t *testing.T) {
	s, cs := bootPair(t, 2)
	s.RegisterPset("mpi://WORLD", []int{0, 1})

	id1, err := cs[0].AllocPGCID("app://g1", []int{0, 1}, time.Second)
	if err != nil {
		t.Fatalf("AllocPGCID: %v", err)
	}
	id2, err := cs[1].AllocPGCID("", nil, time.Second)
	if err != nil {
		t.Fatalf("AllocPGCID: %v", err)
	}
	if id1 == 0 || id2 == 0 || id1 == id2 {
		t.Fatalf("PGCIDs not unique non-zero: %d, %d", id1, id2)
	}

	psets, err := cs[1].QueryPsets(time.Second)
	if err != nil {
		t.Fatalf("QueryPsets: %v", err)
	}
	if len(psets["mpi://WORLD"]) != 2 || len(psets["app://g1"]) != 2 {
		t.Fatalf("psets = %v", psets)
	}

	if err := cs[0].UpdatePset("app://g1", []int{0}); err != nil {
		t.Fatalf("UpdatePset: %v", err)
	}
	if err := cs[0].DeregisterPset("mpi://WORLD"); err != nil {
		t.Fatalf("DeregisterPset: %v", err)
	}
	// Updates are fire-and-forget; a replied query afterwards on the same
	// connection observes them (serial per-conn processing).
	psets, err = cs[0].QueryPsets(time.Second)
	if err != nil {
		t.Fatalf("QueryPsets: %v", err)
	}
	if _, ok := psets["mpi://WORLD"]; ok {
		t.Fatal("deregistered pset still present")
	}
	if len(psets["app://g1"]) != 1 {
		t.Fatalf("updated pset = %v", psets["app://g1"])
	}
}

func TestBootNameService(t *testing.T) {
	_, cs := bootPair(t, 2)

	// Non-blocking lookup misses before publish.
	if _, ok, err := cs[1].LookupGlobal("port", 0); err != nil || ok {
		t.Fatalf("lookup before publish: ok=%v err=%v", ok, err)
	}
	// Blocking lookup parks until the publish arrives.
	done := make(chan []byte, 1)
	go func() {
		v, ok, err := cs[1].LookupGlobal("port", 5*time.Second)
		if err != nil || !ok {
			done <- nil
			return
		}
		done <- v
	}()
	time.Sleep(50 * time.Millisecond)
	if err := cs[0].PublishGlobal("port", []byte("tcp://x")); err != nil {
		t.Fatalf("PublishGlobal: %v", err)
	}
	if v := <-done; string(v) != "tcp://x" {
		t.Fatalf("blocking lookup returned %q", v)
	}

	if err := cs[0].UnpublishGlobal("port"); err != nil {
		t.Fatalf("UnpublishGlobal: %v", err)
	}
	if _, ok, _ := cs[0].LookupGlobal("port", 0); ok {
		t.Fatal("unpublished key still visible")
	}
}

func TestBootEvents(t *testing.T) {
	_, cs := bootPair(t, 3)
	handlers := make([]*testHandler, 3)
	for i, c := range cs {
		handlers[i] = newTestHandler()
		c.AttachServer(handlers[i])
	}

	cs[0].BroadcastEvent([]byte("boom"))
	for i, h := range handlers {
		if got := h.waitEvent(t); string(got) != "boom" {
			t.Fatalf("handler %d got %q", i, got)
		}
	}

	if err := cs[2].NotifyNode(1, []byte("psst")); err != nil {
		t.Fatalf("NotifyNode: %v", err)
	}
	if got := handlers[1].waitEvent(t); string(got) != "psst" {
		t.Fatalf("notify delivered %q", got)
	}
	select {
	case <-handlers[0].gotEv:
		t.Fatal("targeted notify leaked to node 0")
	case <-time.After(100 * time.Millisecond):
	}
}

func TestBootConnectionLossFailsPendingCalls(t *testing.T) {
	s, cs := bootPair(t, 1)
	errc := make(chan error, 1)
	go func() {
		_, err := cs[0].Exchange("never", []int{0, 1}, nil, 30*time.Second, nil)
		errc <- err
	}()
	time.Sleep(50 * time.Millisecond)
	s.Close()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("exchange succeeded after server close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pending call not failed on connection loss")
	}
	// And subsequent calls fail fast.
	if _, err := cs[0].QueryPsets(time.Second); err == nil {
		t.Fatal("call on dead client succeeded")
	}
}
