package prrte

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"gompi/internal/simnet"
	"gompi/internal/topo"
)

func testDVM(t *testing.T, nodes int) *DVM {
	t.Helper()
	dvm := NewDVM(simnet.NewFabric(topo.New(topo.Loopback(4), nodes)))
	t.Cleanup(dvm.Shutdown)
	return dvm
}

func TestJobMapBlockMapping(t *testing.T) {
	m := JobMap{NP: 10, PPN: 4}
	if m.Nodes() != 3 {
		t.Fatalf("Nodes = %d, want 3", m.Nodes())
	}
	cases := []struct{ rank, node int }{{0, 0}, {3, 0}, {4, 1}, {7, 1}, {8, 2}, {9, 2}}
	for _, c := range cases {
		if got := m.NodeOf(c.rank); got != c.node {
			t.Errorf("NodeOf(%d) = %d, want %d", c.rank, got, c.node)
		}
	}
	if got := m.RanksOn(2); len(got) != 2 || got[0] != 8 || got[1] != 9 {
		t.Fatalf("RanksOn(2) = %v, want [8 9]", got)
	}
	if got := m.RanksOn(0); len(got) != 4 {
		t.Fatalf("RanksOn(0) = %v, want 4 ranks", got)
	}
	if m.LocalCount(2) != 2 {
		t.Fatalf("LocalCount(2) = %d, want 2", m.LocalCount(2))
	}
}

func TestExchangeAllToAll(t *testing.T) {
	const nodes = 4
	dvm := testDVM(t, nodes)
	participants := []int{0, 1, 2, 3}
	var wg sync.WaitGroup
	results := make([]map[int][]byte, nodes)
	errs := make([]error, nodes)
	for n := 0; n < nodes; n++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			results[n], errs[n] = dvm.Daemon(n).Exchange("op-1", participants, []byte{byte(n)}, 5*time.Second, nil)
		}(n)
	}
	wg.Wait()
	for n := 0; n < nodes; n++ {
		if errs[n] != nil {
			t.Fatalf("daemon %d: %v", n, errs[n])
		}
		if len(results[n]) != nodes {
			t.Fatalf("daemon %d got %d contributions, want %d", n, len(results[n]), nodes)
		}
		for src, data := range results[n] {
			if len(data) != 1 || data[0] != byte(src) {
				t.Fatalf("daemon %d: contribution from %d = %v", n, src, data)
			}
		}
	}
}

func TestExchangeSubsetOfNodes(t *testing.T) {
	dvm := testDVM(t, 4)
	participants := []int{1, 3}
	var wg sync.WaitGroup
	var r1, r3 map[int][]byte
	var e1, e3 error
	wg.Add(2)
	go func() {
		defer wg.Done()
		r1, e1 = dvm.Daemon(1).Exchange("sub", participants, []byte("a"), time.Second, nil)
	}()
	go func() {
		defer wg.Done()
		r3, e3 = dvm.Daemon(3).Exchange("sub", participants, []byte("b"), time.Second, nil)
	}()
	wg.Wait()
	if e1 != nil || e3 != nil {
		t.Fatalf("errors: %v %v", e1, e3)
	}
	if string(r1[3]) != "b" || string(r3[1]) != "a" {
		t.Fatalf("wrong data: r1=%v r3=%v", r1, r3)
	}
}

func TestExchangeSingleNode(t *testing.T) {
	dvm := testDVM(t, 1)
	res, err := dvm.Daemon(0).Exchange("solo", []int{0}, []byte("x"), time.Second, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(res[0]) != "x" {
		t.Fatalf("res = %v", res)
	}
}

func TestExchangeTimeout(t *testing.T) {
	dvm := testDVM(t, 2)
	// Daemon 1 never participates.
	_, err := dvm.Daemon(0).Exchange("late", []int{0, 1}, nil, 50*time.Millisecond, nil)
	if err == nil {
		t.Fatal("expected timeout")
	}
}

func TestPGCIDUniqueNonZero(t *testing.T) {
	dvm := testDVM(t, 3)
	seen := make(map[uint64]bool)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for n := 0; n < 3; n++ {
		for i := 0; i < 10; i++ {
			wg.Add(1)
			go func(n int) {
				defer wg.Done()
				id, err := dvm.Daemon(n).AllocPGCID("", nil, 0)
				if err != nil {
					t.Errorf("AllocPGCID: %v", err)
					return
				}
				if id == 0 {
					t.Error("PGCID must be non-zero")
				}
				mu.Lock()
				if seen[id] {
					t.Errorf("duplicate PGCID %d", id)
				}
				seen[id] = true
				mu.Unlock()
			}(n)
		}
	}
	wg.Wait()
	if len(seen) != 30 {
		t.Fatalf("got %d unique PGCIDs, want 30", len(seen))
	}
}

func TestPsetRegistryAndQuery(t *testing.T) {
	dvm := testDVM(t, 2)
	dvm.RegisterPset("app://ocean", []int{0, 1, 2})
	// Dynamic registration through PGCID allocation from a non-master node.
	if _, err := dvm.Daemon(1).AllocPGCID("grp/ocean-split", []int{0, 2}, 0); err != nil {
		t.Fatal(err)
	}
	psets, err := dvm.Daemon(1).QueryPsets(0)
	if err != nil {
		t.Fatal(err)
	}
	if got := psets["app://ocean"]; len(got) != 3 {
		t.Fatalf("app://ocean = %v", got)
	}
	if got := psets["grp/ocean-split"]; len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("grp/ocean-split = %v, want [0 2]", got)
	}
	// Deregistration removes the dynamic pset.
	if err := dvm.Daemon(1).DeregisterPset("grp/ocean-split"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(time.Second)
	for {
		psets, err = dvm.Daemon(0).QueryPsets(0)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := psets["grp/ocean-split"]; !ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("pset not deregistered")
		}
		time.Sleep(time.Millisecond)
	}
}

type fetchHandler struct {
	mu     sync.Mutex
	data   map[string][]byte
	events [][]byte
}

func (h *fetchHandler) HandleFetch(key string) ([]byte, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	d, ok := h.data[key]
	return d, ok
}

func (h *fetchHandler) HandleEvent(data []byte) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.events = append(h.events, data)
}

func (h *fetchHandler) eventCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.events)
}

func TestFetchRemoteAndLocal(t *testing.T) {
	dvm := testDVM(t, 2)
	h := &fetchHandler{data: map[string][]byte{"k": []byte("v")}}
	dvm.Daemon(1).AttachServer(h)

	data, ok, err := dvm.Daemon(0).Fetch(1, "k", time.Second)
	if err != nil || !ok || string(data) != "v" {
		t.Fatalf("remote fetch: data=%q ok=%v err=%v", data, ok, err)
	}
	_, ok, err = dvm.Daemon(0).Fetch(1, "missing", time.Second)
	if err != nil || ok {
		t.Fatalf("missing key: ok=%v err=%v", ok, err)
	}
	data, ok, err = dvm.Daemon(1).Fetch(1, "k", time.Second)
	if err != nil || !ok || string(data) != "v" {
		t.Fatalf("local fetch: data=%q ok=%v err=%v", data, ok, err)
	}
}

func TestBroadcastEventReachesAllNodes(t *testing.T) {
	dvm := testDVM(t, 3)
	handlers := make([]*fetchHandler, 3)
	for i := range handlers {
		handlers[i] = &fetchHandler{}
		dvm.Daemon(i).AttachServer(handlers[i])
	}
	dvm.Daemon(1).BroadcastEvent([]byte("proc-failed"))
	deadline := time.Now().Add(2 * time.Second)
	for {
		all := true
		for _, h := range handlers {
			if h.eventCount() != 1 {
				all = false
			}
		}
		if all {
			return
		}
		if time.Now().After(deadline) {
			counts := make([]int, 3)
			for i, h := range handlers {
				counts[i] = h.eventCount()
			}
			t.Fatalf("event counts = %v, want [1 1 1]", counts)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestShutdownFailsOperations(t *testing.T) {
	dvm := NewDVM(simnet.NewFabric(topo.New(topo.Loopback(4), 2)))
	dvm.Shutdown()
	if _, err := dvm.Daemon(0).Exchange("x", []int{0, 1}, nil, time.Second, nil); err == nil {
		t.Fatal("Exchange after shutdown should fail")
	}
	if _, err := dvm.Daemon(0).AllocPGCID("", nil, 0); err == nil {
		t.Fatal("AllocPGCID after shutdown should fail")
	}
	if _, err := dvm.Daemon(1).QueryPsets(0); err == nil {
		t.Fatal("QueryPsets after shutdown should fail")
	}
}

func TestConcurrentExchangesDistinctKeys(t *testing.T) {
	const nodes = 3
	const ops = 8
	dvm := testDVM(t, nodes)
	participants := []int{0, 1, 2}
	var wg sync.WaitGroup
	for op := 0; op < ops; op++ {
		for n := 0; n < nodes; n++ {
			wg.Add(1)
			go func(op, n int) {
				defer wg.Done()
				key := fmt.Sprintf("op-%d", op)
				res, err := dvm.Daemon(n).Exchange(key, participants, []byte{byte(op), byte(n)}, 5*time.Second, nil)
				if err != nil {
					t.Errorf("op %d daemon %d: %v", op, n, err)
					return
				}
				for src, data := range res {
					if data[0] != byte(op) || data[1] != byte(src) {
						t.Errorf("op %d daemon %d: bad contribution from %d: %v", op, n, src, data)
					}
				}
			}(op, n)
		}
	}
	wg.Wait()
}
