package prrte

import (
	"testing"
	"time"
)

func TestPublishLookupImmediate(t *testing.T) {
	dvm := testDVM(t, 3)
	if err := dvm.Daemon(1).PublishGlobal("svc/port", []byte("ep:2.7")); err != nil {
		t.Fatal(err)
	}
	// Publish is asynchronous from a non-master daemon; poll until visible.
	deadline := time.Now().Add(2 * time.Second)
	for {
		v, ok, err := dvm.Daemon(2).LookupGlobal("svc/port", 0)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			if string(v) != "ep:2.7" {
				t.Fatalf("value = %q", v)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("published key never became visible")
		}
		time.Sleep(time.Millisecond)
	}
	// Master-local lookup.
	v, ok, err := dvm.Daemon(0).LookupGlobal("svc/port", 0)
	if err != nil || !ok || string(v) != "ep:2.7" {
		t.Fatalf("master lookup = %q,%v,%v", v, ok, err)
	}
	// Missing key polls false.
	if _, ok, err := dvm.Daemon(0).LookupGlobal("missing", 0); ok || err != nil {
		t.Fatalf("missing = %v,%v", ok, err)
	}
}

func TestBlockingLookupWaitsForPublish(t *testing.T) {
	dvm := testDVM(t, 2)
	got := make(chan []byte, 1)
	go func() {
		v, ok, err := dvm.Daemon(1).LookupGlobal("late/key", 5*time.Second)
		if err != nil || !ok {
			t.Errorf("blocking lookup: %v %v", ok, err)
			return
		}
		got <- v
	}()
	time.Sleep(30 * time.Millisecond)
	select {
	case <-got:
		t.Fatal("lookup returned before publish")
	default:
	}
	if err := dvm.Daemon(0).PublishGlobal("late/key", []byte("now")); err != nil {
		t.Fatal(err)
	}
	select {
	case v := <-got:
		if string(v) != "now" {
			t.Fatalf("value = %q", v)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocking lookup never released")
	}
}

func TestBlockingLookupTimeout(t *testing.T) {
	dvm := testDVM(t, 2)
	start := time.Now()
	_, ok, err := dvm.Daemon(1).LookupGlobal("never", 80*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("lookup found an unpublished key")
	}
	if time.Since(start) < 60*time.Millisecond {
		t.Fatal("returned before the timeout")
	}
}

func TestUnpublish(t *testing.T) {
	dvm := testDVM(t, 2)
	if err := dvm.Daemon(0).PublishGlobal("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := dvm.Daemon(1).UnpublishGlobal("k"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		_, ok, err := dvm.Daemon(0).LookupGlobal("k", 0)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("key still published after unpublish")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestPublishAfterShutdownFails(t *testing.T) {
	dvm := testDVM(t, 1)
	dvm.Shutdown()
	if err := dvm.Daemon(0).PublishGlobal("k", nil); err == nil {
		t.Fatal("publish after shutdown accepted")
	}
	if _, _, err := dvm.Daemon(0).LookupGlobal("k", 0); err == nil {
		t.Fatal("lookup after shutdown accepted")
	}
}
