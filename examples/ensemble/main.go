// Ensemble: the fork-join "parallel regions" usage that motivates MPI
// Sessions (§II-A) — the ECMWF/IFS pattern of initializing and
// RE-initializing MPI once per ensemble member. Each member creates a
// fresh session, runs a perturbed simulation on a communicator built for
// just that member, and tears MPI all the way down before the next member
// starts; something impossible with MPI_Init/MPI_Finalize.
//
//	go run ./examples/ensemble
package main

import (
	"fmt"
	"log"
	"math"

	"gompi/internal/core"
	"gompi/internal/topo"
	"gompi/mpi"
	"gompi/runtime"
)

const members = 4

func main() {
	opts := runtime.Options{
		Cluster: topo.New(topo.Jupiter(), 2),
		PPN:     4,
		Config:  core.Config{CIDMode: core.CIDExtended},
	}
	err := runtime.Run(opts, func(p *mpi.Process) error {
		for member := 0; member < members; member++ {
			if err := runMember(p, member); err != nil {
				return fmt.Errorf("ensemble member %d: %w", member, err)
			}
			// MPI is now fully finalized; the instance generation counts
			// complete init/finalize cycles.
			if p.Instance().Active() {
				return fmt.Errorf("member %d left MPI initialized", member)
			}
		}
		if p.JobRank() == 0 {
			fmt.Printf("ran %d members; MPI was initialized and torn down %d times\n",
				members, p.Instance().Generation())
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}

// runMember is one ensemble member: a short "weather" simulation with a
// perturbed initial condition, in its own MPI lifetime.
func runMember(p *mpi.Process, member int) error {
	sess, err := p.SessionInit(nil, mpi.ErrorsReturn())
	if err != nil {
		return err
	}
	defer sess.Finalize()
	grp, err := sess.GroupFromPset(mpi.PsetWorld)
	if err != nil {
		return err
	}
	comm, err := sess.CommCreateFromGroup(grp, fmt.Sprintf("member-%d", member), nil, nil)
	if err != nil {
		return err
	}
	defer comm.Free()

	// Perturbed initial state, relaxed for a few steps with global norms.
	state := math.Sin(float64(comm.Rank())) + 1e-3*float64(member)
	for step := 0; step < 5; step++ {
		mean, err := comm.AllreduceFloat64(state, mpi.OpSum)
		if err != nil {
			return err
		}
		mean /= float64(comm.Size())
		state = 0.5 * (state + mean) // relax toward the ensemble mean
	}
	norm, err := comm.AllreduceFloat64(state*state, mpi.OpSum)
	if err != nil {
		return err
	}
	if comm.Rank() == 0 {
		fmt.Printf("member %d finished: session %q, final norm %.6f\n",
			member, sess.Name(), math.Sqrt(norm))
	}
	return nil
}
