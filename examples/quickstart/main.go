// Quickstart: the complete Figure-1 flow of the paper on a simulated
// 2-node cluster — create a session, discover process sets, build a group
// from mpi://world, construct a communicator from the group, and use it.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"gompi/internal/core"
	"gompi/internal/topo"
	"gompi/mpi"
	"gompi/runtime"
)

func main() {
	opts := runtime.Options{
		Cluster: topo.New(topo.Jupiter(), 2), // two simulated XC30 nodes
		PPN:     4,
		Config:  core.Config{CIDMode: core.CIDExtended},
	}
	err := runtime.Run(opts, func(p *mpi.Process) error {
		// 1. Acquire a session handle (local, light-weight, thread-safe).
		sess, err := p.SessionInit(nil, mpi.ErrorsReturn())
		if err != nil {
			return err
		}
		defer sess.Finalize()

		// 2. Query the runtime for available process sets.
		n, err := sess.NumPsets()
		if err != nil {
			return err
		}
		if p.JobRank() == 0 {
			fmt.Printf("runtime advertises %d process sets\n", n)
		}

		// 3. Build an MPI group from a process-set name.
		group, err := sess.GroupFromPset(mpi.PsetWorld)
		if err != nil {
			return err
		}

		// 4. Create a communicator from the group (collective; the PMIx
		//    group constructor supplies the PGCID behind its exCID).
		comm, err := sess.CommCreateFromGroup(group, "quickstart", nil, nil)
		if err != nil {
			return err
		}
		defer comm.Free()

		// 5. Use it like any communicator.
		sum, err := comm.AllreduceInt64(int64(comm.Rank()), mpi.OpSum)
		if err != nil {
			return err
		}
		if comm.Rank() == 0 {
			fmt.Printf("world-equivalent comm: size=%d exCID=%v rank-sum=%d\n",
				comm.Size(), comm.ExCID(), sum)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}
