// Taskpool: a DASK-MPI-style orchestrator (§II-A) — a framework that runs
// many parallel tasks, each wanting its *own* MPI environment tailored to
// its size. With MPI Sessions the framework creates a fresh session and a
// right-sized communicator per task (via MPI_Comm_create_group over a
// subgroup), runs the task, and releases everything; idle ranks keep
// serving other tasks. The dynamic pattern MPI_Init cannot express.
//
//	go run ./examples/taskpool
package main

import (
	"fmt"
	"log"
	"sort"

	"gompi/internal/core"
	"gompi/internal/topo"
	"gompi/mpi"
	"gompi/runtime"
)

// task describes one parallel task: which ranks run it and its workload.
type task struct {
	id    int
	ranks []int // job-global ranks assigned by the "scheduler"
	size  int   // problem size
}

func main() {
	const np = 8
	// A static schedule, as a simple stand-in for DASK's dynamic one: each
	// task runs on a subset; subsets overlap across tasks.
	tasks := []task{
		{id: 0, ranks: []int{0, 1, 2, 3}, size: 1 << 12},
		{id: 1, ranks: []int{4, 5, 6, 7}, size: 1 << 12},
		{id: 2, ranks: []int{0, 1, 2, 3, 4, 5, 6, 7}, size: 1 << 14},
		{id: 3, ranks: []int{2, 3, 4, 5}, size: 1 << 10},
		{id: 4, ranks: []int{0, 7}, size: 1 << 8},
	}

	opts := runtime.Options{
		Cluster: topo.New(topo.Jupiter(), 2),
		PPN:     4,
		NP:      np,
		Config:  core.Config{CIDMode: core.CIDExtended},
	}
	err := runtime.Run(opts, func(p *mpi.Process) error {
		// One long-lived session per worker for scheduling; per-task
		// communicators come and go inside it.
		sess, err := p.SessionInit(nil, mpi.ErrorsReturn())
		if err != nil {
			return err
		}
		defer sess.Finalize()
		world, err := sess.GroupFromPset(mpi.PsetWorld)
		if err != nil {
			return err
		}
		pool, err := sess.CommCreateFromGroup(world, "taskpool", nil, nil)
		if err != nil {
			return err
		}
		defer pool.Free()

		for _, t := range tasks {
			mine := contains(t.ranks, p.JobRank())
			if mine {
				if err := runTask(pool, t); err != nil {
					return fmt.Errorf("task %d: %w", t.id, err)
				}
			}
			// Tasks with disjoint rank sets run concurrently in real DASK;
			// here the schedule is sequential per worker, so a pool-wide
			// barrier separates scheduling epochs.
			if err := pool.Barrier(); err != nil {
				return err
			}
		}
		if p.JobRank() == 0 {
			fmt.Printf("all %d tasks completed on %d workers\n", len(tasks), np)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}

func contains(rs []int, r int) bool {
	i := sort.SearchInts(rs, r)
	return i < len(rs) && rs[i] == r
}

// runTask builds a right-sized communicator over the task's ranks with
// MPI_Comm_create_group (collective only over those ranks) and runs a
// small reduction workload on it.
func runTask(pool *mpi.Comm, t task) error {
	poolGroup := pool.Group()
	// Translate job ranks to pool group ranks (identical here, but do it
	// properly).
	sub, err := poolGroup.Incl(t.ranks)
	if err != nil {
		return err
	}
	comm, err := pool.CreateGroup(sub, t.id)
	if err != nil {
		return err
	}
	defer comm.Free()

	// The "work": each member contributes a partial sum over its shard.
	var local int64
	for i := comm.Rank(); i < t.size; i += comm.Size() {
		local += int64(i)
	}
	total, err := comm.AllreduceInt64(local, mpi.OpSum)
	if err != nil {
		return err
	}
	want := int64(t.size) * int64(t.size-1) / 2
	if total != want {
		return fmt.Errorf("sum mismatch: got %d want %d", total, want)
	}
	if comm.Rank() == 0 {
		fmt.Printf("task %d done on %d ranks: sum(0..%d) = %d\n", t.id, comm.Size(), t.size-1, total)
	}
	return nil
}
