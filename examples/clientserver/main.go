// Client/server fault isolation (§II-C): server processes coordinate over
// a communicator built from their own pset in their own session; client
// processes come and go — and crash. Because the servers' resources are
// isolated in their session and there is no MPI_COMM_WORLD connecting
// everyone, a client failure is just a runtime event to the servers, not a
// job-wide teardown.
//
//	go run ./examples/clientserver
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"gompi/internal/core"
	"gompi/internal/pmix"
	"gompi/internal/topo"
	"gompi/mpi"
	"gompi/runtime"
)

func main() {
	job, err := runtime.NewJob(runtime.Options{
		Cluster: topo.New(topo.Jupiter(), 2),
		PPN:     3,
		Psets: map[string][]int{
			"app://servers": {0, 1, 2},
			"app://clients": {3, 4, 5},
		},
		Config: core.Config{CIDMode: core.CIDExtended},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer job.Shutdown()

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		if err := job.LaunchRanks([]int{0, 1, 2}, server); err != nil {
			log.Printf("server job: %v", err)
		}
	}()
	go func() {
		defer wg.Done()
		// The client job reports rank 5's crash; that is expected.
		if err := job.LaunchRanks([]int{3, 4, 5}, client); err != nil {
			fmt.Printf("client job ended with (expected) failure: %v\n", err)
		}
	}()
	wg.Wait()
}

func server(p *mpi.Process) error {
	sess, err := p.SessionInit(nil, mpi.ErrorsReturn())
	if err != nil {
		return err
	}
	defer sess.Finalize()
	grp, err := sess.GroupFromPset("app://servers")
	if err != nil {
		return err
	}
	comm, err := sess.CommCreateFromGroup(grp, "srv.internal", nil, nil)
	if err != nil {
		return err
	}
	defer comm.Free()

	failures := make(chan pmix.Proc, 8)
	p.Instance().Client().RegisterEventHandler(
		[]pmix.EventCode{pmix.EventProcTerminated},
		func(ev pmix.Event) { failures <- ev.Source },
	)

	// Serve "requests" (rounds of internal coordination) until the crash
	// notice arrives, then keep serving: the failure must not cascade.
	// Exit is agreed collectively so every server runs the same number of
	// rounds.
	served := 0
	start := time.Now()
	for {
		var sawFailure int64
		select {
		case proc := <-failures:
			sawFailure = 1
			if comm.Rank() == 0 {
				fmt.Printf("server: client rank %d failed; continuing service\n", proc.Rank)
			}
		default:
		}
		anyFailure, err := comm.AllreduceInt64(sawFailure, mpi.OpMax)
		if err != nil {
			return err
		}
		if anyFailure == 1 {
			break
		}
		if time.Since(start) > 10*time.Second {
			return fmt.Errorf("server never observed the client failure")
		}
		served++
		time.Sleep(time.Millisecond)
	}
	// Post-failure service proves the servers' session is unaffected.
	total, err := comm.AllreduceInt64(int64(served), mpi.OpSum)
	if err != nil {
		return fmt.Errorf("post-failure collective failed: %w", err)
	}
	if comm.Rank() == 0 {
		fmt.Printf("server: survived client crash; %d coordination rounds served\n", total)
	}
	return nil
}

func client(p *mpi.Process) error {
	sess, err := p.SessionInit(nil, mpi.ErrorsReturn())
	if err != nil {
		return err
	}
	grp, err := sess.GroupFromPset("app://clients")
	if err != nil {
		return err
	}
	comm, err := sess.CommCreateFromGroup(grp, "cli.pool", nil, nil)
	if err != nil {
		return err
	}
	// Rank 5 crashes mid-run; the runtime converts the panic into an abort
	// and broadcasts the failure event.
	if p.JobRank() == 5 {
		time.Sleep(30 * time.Millisecond)
		panic("client 5: segfault!")
	}
	time.Sleep(50 * time.Millisecond)
	_ = comm.Free()
	return sess.Finalize()
}
