// Coupled components: two application components (an "ocean" and an
// "atmosphere" model, the classic multi-physics pairing) run on disjoint
// process sets, each with its own session and internal communicator, and
// exchange boundary data through an intercommunicator built with
// MPI_Intercomm_create_from_groups — the MPI-4 constructor added for the
// Sessions model. No MPI_COMM_WORLD ties the components together.
//
//	go run ./examples/coupled
package main

import (
	"fmt"
	"log"

	"gompi/internal/core"
	"gompi/internal/topo"
	"gompi/mpi"
	"gompi/runtime"
)

func main() {
	opts := runtime.Options{
		Cluster: topo.New(topo.Jupiter(), 2),
		PPN:     4,
		Psets: map[string][]int{
			"app://ocean":      {0, 1, 2, 3},
			"app://atmosphere": {4, 5, 6, 7},
		},
		Config: core.Config{CIDMode: core.CIDExtended},
	}
	if err := runtime.Run(opts, component); err != nil {
		log.Fatal(err)
	}
}

func component(p *mpi.Process) error {
	sess, err := p.SessionInit(nil, mpi.ErrorsReturn())
	if err != nil {
		return err
	}
	defer sess.Finalize()

	mine, other := "app://ocean", "app://atmosphere"
	if p.JobRank() >= 4 {
		mine, other = other, mine
	}
	myGroup, err := sess.GroupFromPset(mine)
	if err != nil {
		return err
	}
	peerGroup, err := sess.GroupFromPset(other)
	if err != nil {
		return err
	}

	// Component-internal communicator (isolated in this session).
	internal, err := sess.CommCreateFromGroup(myGroup, mine, nil, nil)
	if err != nil {
		return err
	}
	defer internal.Free()

	// The coupler: an intercommunicator between the two components.
	coupler, err := sess.InterCommCreateFromGroups(myGroup, peerGroup, "coupler", nil)
	if err != nil {
		return err
	}
	defer coupler.Free()

	// Three coupling steps: compute internally, then exchange a boundary
	// value with the same-index partner in the other component.
	state := float64(internal.Rank() + 1)
	if mine == "app://atmosphere" {
		state = -state
	}
	for step := 0; step < 3; step++ {
		// "Physics": relax toward the component mean.
		mean, err := internal.AllreduceFloat64(state, mpi.OpSum)
		if err != nil {
			return err
		}
		mean /= float64(internal.Size())
		state = 0.7*state + 0.3*mean

		// Boundary exchange through the coupler.
		out := mpi.PackFloat64s([]float64{state})
		in := make([]byte, 8)
		partner := coupler.Rank()
		if mine == "app://ocean" {
			if err := coupler.Send(out, partner, step); err != nil {
				return err
			}
			if _, err := coupler.Recv(in, partner, step+100); err != nil {
				return err
			}
		} else {
			if _, err := coupler.Recv(in, partner, step); err != nil {
				return err
			}
			if err := coupler.Send(out, partner, step+100); err != nil {
				return err
			}
		}
		flux := mpi.UnpackFloat64s(in)[0]
		state = 0.9*state + 0.1*flux // absorb the boundary flux
	}

	norm, err := internal.AllreduceFloat64(state*state, mpi.OpSum)
	if err != nil {
		return err
	}
	if internal.Rank() == 0 {
		fmt.Printf("%-18s finished 3 coupling steps: |state| = %.6f\n", mine, norm)
	}
	return nil
}
