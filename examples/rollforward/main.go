// Roll-forward recovery (§II-C): a process fails mid-computation; the
// survivors finalize their session, RE-initialize MPI with a fresh
// session, build a communicator over the surviving processes only, and
// continue the computation — redistributing the lost work themselves. No
// global restart, no MPI_COMM_WORLD single point of failure.
//
//	go run ./examples/rollforward
package main

import (
	"fmt"
	"log"
	"time"

	"gompi/internal/core"
	"gompi/internal/pmix"
	"gompi/internal/topo"
	"gompi/mpi"
	"gompi/runtime"
)

const victim = 3 // the rank that will fail

func main() {
	job, err := runtime.NewJob(runtime.Options{
		Cluster: topo.New(topo.Jupiter(), 2),
		PPN:     3,
		Config:  core.Config{CIDMode: core.CIDExtended},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer job.Shutdown()

	// The victim's job reports a crash; that is the point.
	err = job.Launch(worker)
	if err == nil {
		log.Fatal("expected the victim's failure to be reported")
	}
	fmt.Printf("job ended; launcher saw: %v\n", err)
}

func worker(p *mpi.Process) error {
	// ---- Epoch 1: everyone computes together. ----
	sess, err := p.SessionInit(nil, mpi.ErrorsReturn())
	if err != nil {
		return err
	}
	grp, err := sess.GroupFromPset(mpi.PsetWorld)
	if err != nil {
		return err
	}
	comm, err := sess.CommCreateFromGroup(grp, "epoch-1", nil, nil)
	if err != nil {
		return err
	}

	// Each rank owns a shard of 600 work items.
	const items = 600
	shard := items / comm.Size()
	partial := int64(0)
	for i := comm.Rank() * shard; i < (comm.Rank()+1)*shard; i++ {
		partial += int64(i)
	}

	failed := make(chan pmix.Proc, 8)
	p.Instance().Client().RegisterEventHandler(
		[]pmix.EventCode{pmix.EventProcTerminated},
		func(ev pmix.Event) { failed <- ev.Source },
	)

	if p.JobRank() == victim {
		// The victim dies before contributing its shard.
		time.Sleep(20 * time.Millisecond)
		panic("rank 3: node failure")
	}

	// Survivors wait for the failure notification instead of deadlocking
	// in a collective with the dead process.
	select {
	case proc := <-failed:
		if p.JobRank() == 0 {
			fmt.Printf("epoch 1 aborted: rank %d failed\n", proc.Rank)
		}
	case <-time.After(10 * time.Second):
		return fmt.Errorf("never observed the failure")
	}

	// ---- Roll forward: tear down epoch 1 completely. ----
	if err := comm.Free(); err != nil {
		return err
	}
	if err := sess.Finalize(); err != nil {
		return err
	}

	// ---- Epoch 2: re-initialize with the survivors only. ----
	sess2, err := p.SessionInit(nil, mpi.ErrorsReturn())
	if err != nil {
		return err
	}
	defer sess2.Finalize()
	survivors, err := sess2.SurvivorGroup(mpi.PsetWorld)
	if err != nil {
		return err
	}
	comm2, err := sess2.CommCreateFromGroup(survivors, "epoch-2", nil, nil)
	if err != nil {
		return err
	}
	defer comm2.Free()

	// Redistribute the dead rank's shard across the survivors and finish.
	lost := int64(0)
	for i := victim * shard; i < (victim+1)*shard; i++ {
		lost += int64(i)
	}
	extra := int64(0)
	if comm2.Rank() == 0 {
		extra = lost // rank 0 adopts the lost shard
	}
	total, err := comm2.AllreduceInt64(partial+extra, mpi.OpSum)
	if err != nil {
		return err
	}
	want := int64(items) * (items - 1) / 2
	if total != want {
		return fmt.Errorf("recovered sum %d != %d", total, want)
	}
	if comm2.Rank() == 0 {
		fmt.Printf("epoch 2 finished on %d survivors: sum(0..%d) = %d (correct)\n",
			comm2.Size(), items-1, total)
	}
	return nil
}
