package mpi_test

import (
	"fmt"
	"sync"
	"testing"

	"gompi/mpi"
)

// TestThreadsEachWithOwnSession exercises the §II-B isolation model:
// several threads of one process drive MPI concurrently, each through
// objects from its own session, with no cross-thread coordination. The
// sessions isolate their resources, so this is legal even at funneled /
// serialized thread levels in the proposal.
func TestThreadsEachWithOwnSession(t *testing.T) {
	const threads = 4
	run(t, 1, 2, exCfg(), func(p *mpi.Process) error {
		var wg sync.WaitGroup
		errs := make(chan error, threads)
		for th := 0; th < threads; th++ {
			wg.Add(1)
			go func(th int) {
				defer wg.Done()
				sess, err := p.SessionInit(nil, mpi.ErrorsReturn())
				if err != nil {
					errs <- err
					return
				}
				defer sess.Finalize()
				grp, err := sess.GroupFromPset(mpi.PsetWorld)
				if err != nil {
					errs <- err
					return
				}
				comm, err := sess.CommCreateFromGroup(grp, fmt.Sprintf("thread-%d", th), nil, nil)
				if err != nil {
					errs <- err
					return
				}
				defer comm.Free()
				// Ping-pong on this thread's private communicator.
				me := comm.Rank()
				peer := 1 - me
				buf := make([]byte, 4)
				for i := 0; i < 20; i++ {
					if me == 0 {
						out := []byte{byte(th), byte(i), 0, 0}
						if err := comm.Send(out, peer, i); err != nil {
							errs <- err
							return
						}
						if _, err := comm.Recv(buf, peer, i); err != nil {
							errs <- err
							return
						}
						if buf[0] != byte(th) || buf[1] != byte(i+1) {
							errs <- fmt.Errorf("thread %d iter %d: cross-session leak? got %v", th, i, buf)
							return
						}
					} else {
						if _, err := comm.Recv(buf, peer, i); err != nil {
							errs <- err
							return
						}
						buf[1]++
						if err := comm.Send(buf, peer, i); err != nil {
							errs <- err
							return
						}
					}
				}
			}(th)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			return err
		}
		return nil
	})
}

// TestThreadsSharedCommThreadMultiple drives one communicator from many
// goroutines concurrently (MPI_THREAD_MULTIPLE semantics), using distinct
// tags per thread so matching is deterministic.
func TestThreadsSharedCommThreadMultiple(t *testing.T) {
	const threads = 6
	run(t, 1, 2, exCfg(), func(p *mpi.Process) error {
		if _, err := p.InitThread(mpi.ThreadMultiple); err != nil {
			return err
		}
		defer p.Finalize()
		world := p.CommWorld()
		var wg sync.WaitGroup
		errs := make(chan error, threads)
		for th := 0; th < threads; th++ {
			wg.Add(1)
			go func(th int) {
				defer wg.Done()
				buf := make([]byte, 1)
				tag := 1000 + th
				for i := 0; i < 15; i++ {
					if world.Rank() == 0 {
						if err := world.Send([]byte{byte(th)}, 1, tag); err != nil {
							errs <- err
							return
						}
						if _, err := world.Recv(buf, 1, tag); err != nil {
							errs <- err
							return
						}
						if buf[0] != byte(th)+1 {
							errs <- fmt.Errorf("thread %d: got %d", th, buf[0])
							return
						}
					} else {
						if _, err := world.Recv(buf, 0, tag); err != nil {
							errs <- err
							return
						}
						buf[0]++
						if err := world.Send(buf, 0, tag); err != nil {
							errs <- err
							return
						}
					}
				}
			}(th)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			return err
		}
		return nil
	})
}
