package mpi_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"gompi/internal/core"
	"gompi/internal/topo"
	"gompi/mpi"
	"gompi/runtime"
)

// portJob runs server ranks {0,1} and client ranks {2,3} concurrently.
func portJob(t *testing.T, server, client func(p *mpi.Process) error) {
	t.Helper()
	job, err := runtime.NewJob(runtime.Options{
		Cluster: topo.New(topo.Loopback(2), 2),
		PPN:     2,
		Psets: map[string][]int{
			"app://server": {0, 1},
			"app://client": {2, 3},
		},
		Config: core.Config{CIDMode: core.CIDExtended},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer job.Shutdown()
	var wg sync.WaitGroup
	wg.Add(2)
	var srvErr, cliErr error
	go func() {
		defer wg.Done()
		srvErr = job.LaunchRanks([]int{0, 1}, server)
	}()
	go func() {
		defer wg.Done()
		cliErr = job.LaunchRanks([]int{2, 3}, client)
	}()
	wg.Wait()
	if srvErr != nil {
		t.Fatalf("server: %v", srvErr)
	}
	if cliErr != nil {
		t.Fatalf("client: %v", cliErr)
	}
}

// componentComm builds a session + pset communicator for one side.
func componentComm(p *mpi.Process, pset, tag string) (*mpi.Comm, func(), error) {
	sess, err := p.SessionInit(nil, mpi.ErrorsReturn())
	if err != nil {
		return nil, nil, err
	}
	grp, err := sess.GroupFromPset(pset)
	if err != nil {
		_ = sess.Finalize()
		return nil, nil, err
	}
	comm, err := sess.CommCreateFromGroup(grp, tag, nil, nil)
	if err != nil {
		_ = sess.Finalize()
		return nil, nil, err
	}
	return comm, func() { _ = comm.Free(); _ = sess.Finalize() }, nil
}

func TestCommAcceptConnect(t *testing.T) {
	portJob(t,
		func(p *mpi.Process) error { // server
			comm, cleanup, err := componentComm(p, "app://server", "srv")
			if err != nil {
				return err
			}
			defer cleanup()
			ic, err := comm.Accept("calc-service", 0, 10*time.Second)
			if err != nil {
				return err
			}
			defer ic.Free()
			if ic.RemoteSize() != 2 {
				return fmt.Errorf("remote size = %d", ic.RemoteSize())
			}
			// Serve one request from the same-index client.
			req := make([]byte, 8)
			if _, err := ic.Recv(req, ic.Rank(), 1); err != nil {
				return err
			}
			v := mpi.UnpackInt64s(req)[0]
			return ic.Send(mpi.PackInt64s([]int64{v * v}), ic.Rank(), 2)
		},
		func(p *mpi.Process) error { // client
			comm, cleanup, err := componentComm(p, "app://client", "cli")
			if err != nil {
				return err
			}
			defer cleanup()
			ic, err := comm.Connect("calc-service", 0, 10*time.Second)
			if err != nil {
				return err
			}
			defer ic.Free()
			in := int64(comm.Rank() + 5)
			if err := ic.Send(mpi.PackInt64s([]int64{in}), ic.Rank(), 1); err != nil {
				return err
			}
			resp := make([]byte, 8)
			if _, err := ic.Recv(resp, ic.Rank(), 2); err != nil {
				return err
			}
			if got := mpi.UnpackInt64s(resp)[0]; got != in*in {
				return fmt.Errorf("service returned %d, want %d", got, in*in)
			}
			return nil
		})
}

func TestSequentialAcceptsOnOnePort(t *testing.T) {
	portJob(t,
		func(p *mpi.Process) error { // server accepts twice
			comm, cleanup, err := componentComm(p, "app://server", "srv2")
			if err != nil {
				return err
			}
			defer cleanup()
			for round := 0; round < 2; round++ {
				ic, err := comm.Accept("multi", 0, 10*time.Second)
				if err != nil {
					return fmt.Errorf("round %d: %w", round, err)
				}
				if err := ic.Barrier(); err != nil {
					return err
				}
				if err := ic.Free(); err != nil {
					return err
				}
			}
			return comm.ClosePort("multi")
		},
		func(p *mpi.Process) error { // client connects twice
			comm, cleanup, err := componentComm(p, "app://client", "cli2")
			if err != nil {
				return err
			}
			defer cleanup()
			for round := 0; round < 2; round++ {
				ic, err := comm.Connect("multi", 0, 10*time.Second)
				if err != nil {
					return fmt.Errorf("round %d: %w", round, err)
				}
				if err := ic.Barrier(); err != nil {
					return err
				}
				if err := ic.Free(); err != nil {
					return err
				}
			}
			return nil
		})
}

func TestConnectTimeoutOnMissingPort(t *testing.T) {
	run(t, 1, 2, exCfg(), func(p *mpi.Process) error {
		comm, cleanup, err := componentComm(p, mpi.PsetWorld, "lonely")
		if err != nil {
			return err
		}
		defer cleanup()
		start := time.Now()
		_, err = comm.Connect("no-such-port", 0, 100*time.Millisecond)
		if err == nil {
			return fmt.Errorf("connect to missing port succeeded")
		}
		if time.Since(start) < 80*time.Millisecond {
			return fmt.Errorf("connect returned before its timeout")
		}
		return nil
	})
}
