package mpi

import (
	"fmt"
	"sort"
)

// Undefined is returned by rank queries when the process is not a member
// (MPI_UNDEFINED).
const Undefined = -32766

// Group is an ordered set of processes, identified here by their job-global
// ranks. Groups are immutable values; the set operations return new groups.
// A group created from a session pset remembers its originating process so
// communicator constructors can reach the runtime.
type Group struct {
	p     *Process
	ranks []int // position (group rank) -> global rank
}

// newGroup copies ranks defensively.
func newGroup(p *Process, ranks []int) *Group {
	cp := make([]int, len(ranks))
	copy(cp, ranks)
	return &Group{p: p, ranks: cp}
}

// Size returns the number of processes in the group (MPI_Group_size).
func (g *Group) Size() int { return len(g.ranks) }

// Rank returns the calling process's rank within the group, or Undefined
// if it is not a member (MPI_Group_rank).
func (g *Group) Rank() int {
	if g.p == nil {
		return Undefined
	}
	for i, r := range g.ranks {
		if r == g.p.rank {
			return i
		}
	}
	return Undefined
}

// GlobalRanks returns the members' job-global ranks in group order.
func (g *Group) GlobalRanks() []int {
	out := make([]int, len(g.ranks))
	copy(out, g.ranks)
	return out
}

// Incl returns the subgroup consisting of the listed group ranks, in that
// order (MPI_Group_incl).
func (g *Group) Incl(groupRanks []int) (*Group, error) {
	out := make([]int, 0, len(groupRanks))
	for _, r := range groupRanks {
		if r < 0 || r >= len(g.ranks) {
			return nil, fmt.Errorf("mpi: group rank %d out of range [0,%d)", r, len(g.ranks))
		}
		out = append(out, g.ranks[r])
	}
	return &Group{p: g.p, ranks: out}, nil
}

// Excl returns the subgroup without the listed group ranks, preserving
// order (MPI_Group_excl).
func (g *Group) Excl(groupRanks []int) (*Group, error) {
	drop := make(map[int]bool, len(groupRanks))
	for _, r := range groupRanks {
		if r < 0 || r >= len(g.ranks) {
			return nil, fmt.Errorf("mpi: group rank %d out of range [0,%d)", r, len(g.ranks))
		}
		drop[r] = true
	}
	var out []int
	for i, gr := range g.ranks {
		if !drop[i] {
			out = append(out, gr)
		}
	}
	return &Group{p: g.p, ranks: out}, nil
}

// Union returns members of g followed by members of other not already in g
// (MPI_Group_union).
func (g *Group) Union(other *Group) *Group {
	seen := make(map[int]bool, len(g.ranks))
	out := make([]int, 0, len(g.ranks)+other.Size())
	for _, r := range g.ranks {
		seen[r] = true
		out = append(out, r)
	}
	for _, r := range other.ranks {
		if !seen[r] {
			out = append(out, r)
		}
	}
	return &Group{p: pick(g.p, other.p), ranks: out}
}

// Intersection returns members of g that are also in other, in g's order
// (MPI_Group_intersection).
func (g *Group) Intersection(other *Group) *Group {
	in := make(map[int]bool, other.Size())
	for _, r := range other.ranks {
		in[r] = true
	}
	var out []int
	for _, r := range g.ranks {
		if in[r] {
			out = append(out, r)
		}
	}
	return &Group{p: pick(g.p, other.p), ranks: out}
}

// Difference returns members of g not in other, in g's order
// (MPI_Group_difference).
func (g *Group) Difference(other *Group) *Group {
	in := make(map[int]bool, other.Size())
	for _, r := range other.ranks {
		in[r] = true
	}
	var out []int
	for _, r := range g.ranks {
		if !in[r] {
			out = append(out, r)
		}
	}
	return &Group{p: pick(g.p, other.p), ranks: out}
}

func pick(a, b *Process) *Process {
	if a != nil {
		return a
	}
	return b
}

// TranslateRanks maps group ranks in g to the corresponding ranks in other,
// yielding Undefined where a process is not in other
// (MPI_Group_translate_ranks).
func (g *Group) TranslateRanks(ranks []int, other *Group) ([]int, error) {
	pos := make(map[int]int, other.Size())
	for i, r := range other.ranks {
		pos[r] = i
	}
	out := make([]int, len(ranks))
	for i, r := range ranks {
		if r < 0 || r >= len(g.ranks) {
			return nil, fmt.Errorf("mpi: group rank %d out of range [0,%d)", r, len(g.ranks))
		}
		if p, ok := pos[g.ranks[r]]; ok {
			out[i] = p
		} else {
			out[i] = Undefined
		}
	}
	return out, nil
}

// Comparison results (MPI_Group_compare).
const (
	Ident     = 0 // same members, same order
	Similar   = 1 // same members, different order
	Unequal   = 2 // different members
	Congruent = 3 // communicators: same group, different context
)

// Compare relates two groups (MPI_Group_compare).
func (g *Group) Compare(other *Group) int {
	if len(g.ranks) != len(other.ranks) {
		return Unequal
	}
	ident := true
	for i := range g.ranks {
		if g.ranks[i] != other.ranks[i] {
			ident = false
			break
		}
	}
	if ident {
		return Ident
	}
	a := append([]int(nil), g.ranks...)
	b := append([]int(nil), other.ranks...)
	sort.Ints(a)
	sort.Ints(b)
	for i := range a {
		if a[i] != b[i] {
			return Unequal
		}
	}
	return Similar
}

// Free releases the group (MPI_Group_free). Groups are garbage-collected
// values in Go; Free exists for API parity and is a no-op.
func (g *Group) Free() {}
