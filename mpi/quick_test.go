package mpi

import (
	"bytes"
	"math"
	"sort"
	"testing"
	"testing/quick"
)

// Property-based tests (testing/quick) for the pure data-structure layers:
// datatype packing, reduction-operation algebra, info objects, and group
// set algebra checked against map/set oracles.

func TestQuickPackFloat64RoundTrip(t *testing.T) {
	f := func(v []float64) bool {
		got := UnpackFloat64s(PackFloat64s(v))
		if len(got) != len(v) {
			return false
		}
		for i := range v {
			if got[i] != v[i] && !(math.IsNaN(got[i]) && math.IsNaN(v[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickPackInt64RoundTrip(t *testing.T) {
	f := func(v []int64) bool {
		got := UnpackInt64s(PackInt64s(v))
		if len(got) != len(v) {
			return false
		}
		for i := range v {
			if got[i] != v[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickPackUint32RoundTrip(t *testing.T) {
	f := func(v []uint32) bool {
		got := UnpackUint32s(PackUint32s(v))
		if len(got) != len(v) {
			return false
		}
		for i := range v {
			if got[i] != v[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// reduceOne applies op to two scalars through the []byte kernel.
func reduceOne(t *testing.T, op Op, a, b int64) int64 {
	t.Helper()
	inout := PackInt64s([]int64{a})
	in := PackInt64s([]int64{b})
	if err := reduce(op, Int64, inout, in, 1); err != nil {
		t.Fatal(err)
	}
	return UnpackInt64s(inout)[0]
}

func TestQuickReduceCommutative(t *testing.T) {
	for _, op := range []Op{OpSum, OpProd, OpMax, OpMin, OpBAnd, OpBOr, OpLAnd, OpLOr} {
		op := op
		f := func(a, b int64) bool {
			return reduceOne(t, op, a, b) == reduceOne(t, op, b, a)
		}
		if err := quick.Check(f, nil); err != nil {
			t.Fatalf("%v not commutative: %v", op, err)
		}
	}
}

func TestQuickReduceAssociative(t *testing.T) {
	// Associativity for the ops MPI assumes associative (integer Sum/Prod
	// wrap around, which preserves associativity in two's complement).
	for _, op := range []Op{OpSum, OpProd, OpMax, OpMin, OpBAnd, OpBOr} {
		op := op
		f := func(a, b, c int64) bool {
			left := reduceOne(t, op, reduceOne(t, op, a, b), c)
			right := reduceOne(t, op, a, reduceOne(t, op, b, c))
			return left == right
		}
		if err := quick.Check(f, nil); err != nil {
			t.Fatalf("%v not associative: %v", op, err)
		}
	}
}

func TestQuickReduceIdentities(t *testing.T) {
	f := func(a int64) bool {
		return reduceOne(t, OpSum, a, 0) == a &&
			reduceOne(t, OpProd, a, 1) == a &&
			reduceOne(t, OpMax, a, math.MinInt64) == a &&
			reduceOne(t, OpMin, a, math.MaxInt64) == a &&
			reduceOne(t, OpBOr, a, 0) == a &&
			reduceOne(t, OpBAnd, a, -1) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickReduceVectorMatchesScalar(t *testing.T) {
	// The vectorized kernel must agree with element-by-element application.
	f := func(a, b []int64) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		if n == 0 {
			return true
		}
		inout := PackInt64s(a[:n])
		in := PackInt64s(b[:n])
		if err := reduce(OpSum, Int64, inout, in, n); err != nil {
			return false
		}
		got := UnpackInt64s(inout)
		for i := 0; i < n; i++ {
			if got[i] != a[i]+b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickInfoMatchesMapOracle(t *testing.T) {
	type opcode struct {
		Kind  uint8
		Key   uint8 // small key space to force collisions
		Value string
	}
	f := func(ops []opcode) bool {
		info := NewInfo()
		oracle := map[string]string{}
		for _, op := range ops {
			key := string(rune('a' + op.Key%5))
			switch op.Kind % 3 {
			case 0:
				info.Set(key, op.Value)
				oracle[key] = op.Value
			case 1:
				info.Delete(key)
				delete(oracle, key)
			case 2:
				v, ok := info.Get(key)
				ov, ook := oracle[key]
				if ok != ook || v != ov {
					return false
				}
			}
		}
		if info.Len() != len(oracle) {
			return false
		}
		for _, k := range info.Keys() {
			if _, ok := oracle[k]; !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// smallRanks maps arbitrary bytes into small rank sets with duplicates
// removed (groups hold each process at most once).
func smallRanks(bs []byte) []int {
	seen := map[int]bool{}
	var out []int
	for _, b := range bs {
		r := int(b % 16)
		if !seen[r] {
			seen[r] = true
			out = append(out, r)
		}
	}
	return out
}

func TestQuickGroupAlgebraMatchesSetOracle(t *testing.T) {
	f := func(aRaw, bRaw []byte) bool {
		a := newGroup(nil, smallRanks(aRaw))
		b := newGroup(nil, smallRanks(bRaw))
		setA := map[int]bool{}
		for _, r := range a.ranks {
			setA[r] = true
		}
		setB := map[int]bool{}
		for _, r := range b.ranks {
			setB[r] = true
		}

		toSet := func(g *Group) map[int]bool {
			s := map[int]bool{}
			for _, r := range g.ranks {
				s[r] = true
			}
			return s
		}
		eq := func(s map[int]bool, want func(r int) bool) bool {
			universe := map[int]bool{}
			for r := range setA {
				universe[r] = true
			}
			for r := range setB {
				universe[r] = true
			}
			for r := range universe {
				if s[r] != want(r) {
					return false
				}
			}
			for r := range s {
				if !universe[r] {
					return false
				}
			}
			return true
		}

		if !eq(toSet(a.Union(b)), func(r int) bool { return setA[r] || setB[r] }) {
			return false
		}
		if !eq(toSet(a.Intersection(b)), func(r int) bool { return setA[r] && setB[r] }) {
			return false
		}
		if !eq(toSet(a.Difference(b)), func(r int) bool { return setA[r] && !setB[r] }) {
			return false
		}
		// Union preserves A's order as a prefix.
		u := a.Union(b)
		for i, r := range a.ranks {
			if u.ranks[i] != r {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickGroupCompareSymmetry(t *testing.T) {
	f := func(aRaw, bRaw []byte) bool {
		a := newGroup(nil, smallRanks(aRaw))
		b := newGroup(nil, smallRanks(bRaw))
		ab := a.Compare(b)
		ba := b.Compare(a)
		if ab != ba {
			return false
		}
		// Self-comparison is Ident; sorted-equal permutations are Similar
		// or Ident.
		if a.Compare(a) != Ident {
			return false
		}
		as := append([]int(nil), a.ranks...)
		bs := append([]int(nil), b.ranks...)
		sort.Ints(as)
		sort.Ints(bs)
		sameMembers := len(as) == len(bs)
		if sameMembers {
			for i := range as {
				if as[i] != bs[i] {
					sameMembers = false
					break
				}
			}
		}
		if sameMembers != (ab == Ident || ab == Similar) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDatatypeSizes(t *testing.T) {
	// Pack length invariants for arbitrary slices.
	f := func(v []int64, w []float64, u []uint32) bool {
		return len(PackInt64s(v)) == 8*len(v) &&
			len(PackFloat64s(w)) == 8*len(w) &&
			len(PackUint32s(u)) == 4*len(u)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickReduceByteIdempotentOps(t *testing.T) {
	// MAX/MIN/BAND/BOR are idempotent: op(a,a) == a, on the byte kernel.
	f := func(data []byte) bool {
		for _, op := range []Op{OpMax, OpMin, OpBAnd, OpBOr} {
			inout := append([]byte(nil), data...)
			in := append([]byte(nil), data...)
			if err := reduce(op, Byte, inout, in, len(data)); err != nil {
				return false
			}
			if !bytes.Equal(inout, data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
