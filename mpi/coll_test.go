package mpi_test

import (
	"bytes"
	"fmt"
	"sync/atomic"
	"time"

	"testing"

	"gompi/internal/core"
	"gompi/mpi"
)

// withWorld runs body on every rank with an initialized world communicator.
func withWorld(t *testing.T, nodes, ppn int, cfg core.Config, body func(p *mpi.Process, world *mpi.Comm) error) {
	t.Helper()
	run(t, nodes, ppn, cfg, func(p *mpi.Process) error {
		if err := p.Init(); err != nil {
			return err
		}
		defer p.Finalize()
		return body(p, p.CommWorld())
	})
}

func TestBarrierSynchronizes(t *testing.T) {
	for _, cfg := range []core.Config{conCfg(), exCfg()} {
		cfg := cfg
		t.Run(cfg.CIDMode.String(), func(t *testing.T) {
			var entered atomic.Int32
			withWorld(t, 2, 2, cfg, func(p *mpi.Process, world *mpi.Comm) error {
				if world.Rank() == 2 {
					time.Sleep(30 * time.Millisecond)
				}
				entered.Add(1)
				if err := world.Barrier(); err != nil {
					return err
				}
				if got := entered.Load(); got != 4 {
					return fmt.Errorf("rank %d left barrier with %d entered", world.Rank(), got)
				}
				return nil
			})
		})
	}
}

func TestBcastAllSizes(t *testing.T) {
	withWorld(t, 2, 3, exCfg(), func(p *mpi.Process, world *mpi.Comm) error {
		for _, root := range []int{0, 3, 5} {
			for _, n := range []int{1, 100, 10000} {
				buf := make([]byte, n)
				if world.Rank() == root {
					for i := range buf {
						buf[i] = byte(i*31 + root)
					}
				}
				if err := world.Bcast(buf, root); err != nil {
					return err
				}
				for i := range buf {
					if buf[i] != byte(i*31+root) {
						return fmt.Errorf("root %d size %d: byte %d corrupt", root, n, i)
					}
				}
			}
		}
		return nil
	})
}

func TestAllreduceOpsAndRoots(t *testing.T) {
	withWorld(t, 2, 2, exCfg(), func(p *mpi.Process, world *mpi.Comm) error {
		r := int64(world.Rank())
		n := int64(world.Size())
		sum, err := world.AllreduceInt64(r+1, mpi.OpSum)
		if err != nil {
			return err
		}
		if sum != n*(n+1)/2 {
			return fmt.Errorf("sum = %d", sum)
		}
		max, err := world.AllreduceInt64(r, mpi.OpMax)
		if err != nil {
			return err
		}
		if max != n-1 {
			return fmt.Errorf("max = %d", max)
		}
		min, err := world.AllreduceInt64(r, mpi.OpMin)
		if err != nil {
			return err
		}
		if min != 0 {
			return fmt.Errorf("min = %d", min)
		}
		prod, err := world.AllreduceInt64(r+1, mpi.OpProd)
		if err != nil {
			return err
		}
		if prod != 24 { // 4!
			return fmt.Errorf("prod = %d", prod)
		}
		f, err := world.AllreduceFloat64(0.5, mpi.OpSum)
		if err != nil {
			return err
		}
		if f != 2.0 {
			return fmt.Errorf("fsum = %v", f)
		}
		return nil
	})
}

func TestReduceVectorToNonzeroRoot(t *testing.T) {
	withWorld(t, 1, 4, exCfg(), func(p *mpi.Process, world *mpi.Comm) error {
		const root = 2
		const count = 5
		in := make([]int64, count)
		for i := range in {
			in[i] = int64(world.Rank() + i)
		}
		var out []byte
		if world.Rank() == root {
			out = make([]byte, count*8)
		}
		if err := world.Reduce(mpi.PackInt64s(in), out, count, mpi.Int64, mpi.OpSum, root); err != nil {
			return err
		}
		if world.Rank() == root {
			got := mpi.UnpackInt64s(out)
			for i := range got {
				want := int64(0+1+2+3) + int64(4*i)
				if got[i] != want {
					return fmt.Errorf("element %d = %d, want %d", i, got[i], want)
				}
			}
		}
		return nil
	})
}

func TestAllgatherRing(t *testing.T) {
	withWorld(t, 2, 2, exCfg(), func(p *mpi.Process, world *mpi.Comm) error {
		const blk = 3
		mine := bytes.Repeat([]byte{byte('A' + world.Rank())}, blk)
		all := make([]byte, blk*world.Size())
		if err := world.Allgather(mine, all); err != nil {
			return err
		}
		for r := 0; r < world.Size(); r++ {
			for i := 0; i < blk; i++ {
				if all[r*blk+i] != byte('A'+r) {
					return fmt.Errorf("block %d = %q", r, all[r*blk:(r+1)*blk])
				}
			}
		}
		return nil
	})
}

func TestGatherScatterRoundTrip(t *testing.T) {
	withWorld(t, 1, 4, exCfg(), func(p *mpi.Process, world *mpi.Comm) error {
		const root = 1
		mine := []byte{byte(world.Rank() * 10)}
		var gathered []byte
		if world.Rank() == root {
			gathered = make([]byte, world.Size())
		}
		if err := world.Gather(mine, gathered, root); err != nil {
			return err
		}
		if world.Rank() == root {
			for r := 0; r < world.Size(); r++ {
				if gathered[r] != byte(r*10) {
					return fmt.Errorf("gathered[%d] = %d", r, gathered[r])
				}
			}
			// Double each value, then scatter back.
			for i := range gathered {
				gathered[i] *= 2
			}
		}
		back := make([]byte, 1)
		if err := world.Scatter(gathered, back, root); err != nil {
			return err
		}
		if back[0] != byte(world.Rank()*20) {
			return fmt.Errorf("scattered = %d, want %d", back[0], world.Rank()*20)
		}
		return nil
	})
}

func TestAlltoall(t *testing.T) {
	withWorld(t, 2, 2, exCfg(), func(p *mpi.Process, world *mpi.Comm) error {
		n := world.Size()
		send := make([]byte, n)
		for i := range send {
			send[i] = byte(world.Rank()*16 + i)
		}
		recv := make([]byte, n)
		if err := world.Alltoall(send, recv); err != nil {
			return err
		}
		for i := range recv {
			// Block I received from rank i is i's block for me.
			want := byte(i*16 + world.Rank())
			if recv[i] != want {
				return fmt.Errorf("recv[%d] = %d, want %d", i, recv[i], want)
			}
		}
		return nil
	})
}

func TestIbarrierQuiescencePattern(t *testing.T) {
	// The QUO pattern from §IV-E: loop over Ibarrier Test + nanosleep.
	withWorld(t, 1, 4, exCfg(), func(p *mpi.Process, world *mpi.Comm) error {
		if world.Rank() == 3 {
			time.Sleep(20 * time.Millisecond)
		}
		req, err := world.Ibarrier()
		if err != nil {
			return err
		}
		polls := 0
		for {
			done, _, err := req.Test()
			if err != nil {
				return err
			}
			if done {
				break
			}
			polls++
			time.Sleep(100 * time.Microsecond)
		}
		if world.Rank() == 0 && polls == 0 {
			// Rank 0 should have had to wait for the delayed rank 3.
			return fmt.Errorf("ibarrier completed without any polling")
		}
		return nil
	})
}

func TestCollectivesBackToBack(t *testing.T) {
	// Stress internal tag sequencing: many collectives of different kinds
	// in a row must never cross-match.
	withWorld(t, 2, 2, exCfg(), func(p *mpi.Process, world *mpi.Comm) error {
		for i := 0; i < 30; i++ {
			v, err := world.AllreduceInt64(int64(i), mpi.OpMax)
			if err != nil {
				return err
			}
			if v != int64(i) {
				return fmt.Errorf("iter %d: max = %d", i, v)
			}
			buf := []byte{byte(i)}
			if err := world.Bcast(buf, i%world.Size()); err != nil {
				return err
			}
			if buf[0] != byte(i) {
				return fmt.Errorf("iter %d: bcast = %d", i, buf[0])
			}
			if err := world.Barrier(); err != nil {
				return err
			}
		}
		return nil
	})
}

func TestLargeMessageCollective(t *testing.T) {
	// Rendezvous-size payloads through bcast and allgather.
	withWorld(t, 2, 1, exCfg(), func(p *mpi.Process, world *mpi.Comm) error {
		big := make([]byte, 64*1024)
		if world.Rank() == 0 {
			for i := range big {
				big[i] = byte(i % 251)
			}
		}
		if err := world.Bcast(big, 0); err != nil {
			return err
		}
		for i := range big {
			if big[i] != byte(i%251) {
				return fmt.Errorf("bcast corrupt at %d", i)
			}
		}
		return nil
	})
}
