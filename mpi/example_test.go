package mpi_test

import (
	"fmt"

	"gompi/internal/core"
	"gompi/internal/topo"
	"gompi/mpi"
	"gompi/runtime"
)

// Example demonstrates the paper's Figure 1 flow: session → process set →
// group → communicator, followed by a collective.
func Example() {
	opts := runtime.Options{
		Cluster: topo.New(topo.Loopback(4), 1),
		PPN:     4,
		Config:  core.Config{CIDMode: core.CIDExtended},
	}
	err := runtime.Run(opts, func(p *mpi.Process) error {
		sess, err := p.SessionInit(nil, mpi.ErrorsReturn())
		if err != nil {
			return err
		}
		defer sess.Finalize()
		group, err := sess.GroupFromPset(mpi.PsetWorld)
		if err != nil {
			return err
		}
		comm, err := sess.CommCreateFromGroup(group, "example", nil, nil)
		if err != nil {
			return err
		}
		defer comm.Free()
		sum, err := comm.AllreduceInt64(int64(comm.Rank()), mpi.OpSum)
		if err != nil {
			return err
		}
		if comm.Rank() == 0 {
			fmt.Printf("sum of ranks 0..%d = %d\n", comm.Size()-1, sum)
		}
		return nil
	})
	if err != nil {
		fmt.Println("error:", err)
	}
	// Output: sum of ranks 0..3 = 6
}

// ExampleProcess_SessionInit shows MPI being initialized, finalized, and
// re-initialized — the capability MPI_Init cannot provide.
func ExampleProcess_SessionInit() {
	opts := runtime.Options{
		Cluster: topo.New(topo.Loopback(2), 1),
		PPN:     2,
		Config:  core.Config{CIDMode: core.CIDExtended},
	}
	err := runtime.Run(opts, func(p *mpi.Process) error {
		for cycle := 0; cycle < 3; cycle++ {
			sess, err := p.SessionInit(nil, mpi.ErrorsReturn())
			if err != nil {
				return err
			}
			if err := sess.Finalize(); err != nil {
				return err
			}
		}
		if p.JobRank() == 0 {
			fmt.Printf("completed %d init/finalize cycles\n", p.Instance().Generation())
		}
		return nil
	})
	if err != nil {
		fmt.Println("error:", err)
	}
	// Output: completed 3 init/finalize cycles
}

// ExampleComm_Split partitions a communicator by color.
func ExampleComm_Split() {
	opts := runtime.Options{
		Cluster: topo.New(topo.Loopback(4), 1),
		PPN:     4,
		Config:  core.Config{CIDMode: core.CIDExtended},
	}
	err := runtime.Run(opts, func(p *mpi.Process) error {
		if err := p.Init(); err != nil {
			return err
		}
		defer p.Finalize()
		world := p.CommWorld()
		half, err := world.Split(world.Rank()%2, world.Rank())
		if err != nil {
			return err
		}
		defer half.Free()
		n, err := half.AllreduceInt64(1, mpi.OpSum)
		if err != nil {
			return err
		}
		if world.Rank() == 0 {
			fmt.Printf("my half has %d members\n", n)
		}
		return nil
	})
	if err != nil {
		fmt.Println("error:", err)
	}
	// Output: my half has 2 members
}
