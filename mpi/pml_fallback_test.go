package mpi_test

import (
	"errors"
	"fmt"
	"testing"

	"gompi/internal/core"
	"gompi/mpi"
)

// TestNonOb1PMLFallsBackToConsensus covers the paper's fallback rule
// (§III-B3): the exCID generator is used exclusively when the ob1 PML is
// in use; with another PML the library reverts to the consensus algorithm
// and Sessions communicator constructors are unavailable.
func TestNonOb1PMLFallsBackToConsensus(t *testing.T) {
	cfg := core.Config{CIDMode: core.CIDExtended, PML: "cm"}
	run(t, 1, 2, cfg, func(p *mpi.Process) error {
		if err := p.Init(); err != nil {
			return err
		}
		defer p.Finalize()
		world := p.CommWorld()
		if world.UsesExCID() {
			return fmt.Errorf("cm PML must not use exCID matching")
		}
		// Consensus dup still works.
		dup, err := world.Dup()
		if err != nil {
			return err
		}
		defer dup.Free()
		if dup.UsesExCID() {
			return fmt.Errorf("dup under cm PML used exCID")
		}
		// Sessions constructors are unavailable.
		sess, err := p.SessionInit(nil, nil)
		if err != nil {
			return err
		}
		defer sess.Finalize()
		grp, err := sess.GroupFromPset(mpi.PsetWorld)
		if err != nil {
			return err
		}
		if _, err := sess.CommCreateFromGroup(grp, "x", nil, nil); !errors.Is(err, mpi.ErrUnsupported) {
			return fmt.Errorf("CommCreateFromGroup under cm PML: %v", err)
		}
		return nil
	})
}

func TestEffectiveCIDMode(t *testing.T) {
	cases := []struct {
		cfg  core.Config
		want core.CIDMode
	}{
		{core.Config{CIDMode: core.CIDExtended}, core.CIDExtended},
		{core.Config{CIDMode: core.CIDExtended, PML: "ob1"}, core.CIDExtended},
		{core.Config{CIDMode: core.CIDExtended, PML: "cm"}, core.CIDConsensus},
		{core.Config{CIDMode: core.CIDConsensus, PML: "cm"}, core.CIDConsensus},
		{core.Config{CIDMode: core.CIDConsensus}, core.CIDConsensus},
	}
	for _, c := range cases {
		if got := c.cfg.EffectiveCIDMode(); got != c.want {
			t.Errorf("EffectiveCIDMode(%+v) = %v, want %v", c.cfg, got, c.want)
		}
	}
	if (core.Config{}).PMLName() != "ob1" {
		t.Error("default PML should be ob1")
	}
}
