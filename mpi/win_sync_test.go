package mpi_test

import (
	"fmt"
	"testing"

	"gompi/mpi"
)

func TestWinPSCWEpoch(t *testing.T) {
	withSession(t, 1, 4, func(p *mpi.Process, s *mpi.Session, g *mpi.Group) error {
		win, err := s.WinCreateFromGroup(g, "pscw", 16)
		if err != nil {
			return err
		}
		defer win.Free()
		comm := win.Comm()
		me := comm.Rank()

		// Ranks 1..3 (origins) put into rank 0 (target) under PSCW.
		worldGroup := comm.Group()
		origins, err := worldGroup.Incl([]int{1, 2, 3})
		if err != nil {
			return err
		}
		targets, err := worldGroup.Incl([]int{0})
		if err != nil {
			return err
		}
		if me == 0 {
			if err := win.Post(origins); err != nil {
				return err
			}
			if err := win.WaitEpoch(origins); err != nil {
				return err
			}
			for r := 1; r <= 3; r++ {
				if win.Local()[r] != byte(10*r) {
					return fmt.Errorf("slot %d = %d, want %d", r, win.Local()[r], 10*r)
				}
			}
			return nil
		}
		if err := win.Start(targets); err != nil {
			return err
		}
		if err := win.Put(0, me, []byte{byte(10 * me)}); err != nil {
			return err
		}
		return win.Complete()
	})
}

func TestWinCompleteWithoutStartFails(t *testing.T) {
	withSession(t, 1, 2, func(p *mpi.Process, s *mpi.Session, g *mpi.Group) error {
		win, err := s.WinCreateFromGroup(g, "nostart", 8)
		if err != nil {
			return err
		}
		defer win.Free()
		if err := win.Complete(); err == nil {
			return fmt.Errorf("Complete without Start accepted")
		}
		return nil
	})
}

func TestWinLockExclusiveCounter(t *testing.T) {
	withSession(t, 1, 4, func(p *mpi.Process, s *mpi.Session, g *mpi.Group) error {
		win, err := s.WinCreateFromGroup(g, "lock", 8)
		if err != nil {
			return err
		}
		defer win.Free()
		comm := win.Comm()
		// Every rank increments the counter at rank 0 under an exclusive
		// lock, read-modify-write: without mutual exclusion updates would
		// be lost.
		const itersPerRank = 8
		for i := 0; i < itersPerRank; i++ {
			if err := win.Lock(mpi.LockExclusive, 0); err != nil {
				return err
			}
			var cur [8]byte
			if err := win.Get(0, 0, cur[:]); err != nil {
				return err
			}
			v := mpi.UnpackInt64s(cur[:])[0]
			if err := win.Put(0, 0, mpi.PackInt64s([]int64{v + 1})); err != nil {
				return err
			}
			if err := win.Unlock(0); err != nil {
				return err
			}
		}
		if err := win.Fence(); err != nil {
			return err
		}
		if comm.Rank() == 0 {
			got := mpi.UnpackInt64s(win.Local()[:8])[0]
			want := int64(itersPerRank * comm.Size())
			if got != want {
				return fmt.Errorf("counter = %d, want %d (lost updates)", got, want)
			}
		}
		return nil
	})
}

func TestWinLockSharedReaders(t *testing.T) {
	withSession(t, 1, 3, func(p *mpi.Process, s *mpi.Session, g *mpi.Group) error {
		win, err := s.WinCreateFromGroup(g, "shared", 8)
		if err != nil {
			return err
		}
		defer win.Free()
		comm := win.Comm()
		if comm.Rank() == 0 {
			copy(win.Local(), mpi.PackInt64s([]int64{777}))
		}
		if err := win.Fence(); err != nil {
			return err
		}
		// All ranks read rank 0 under shared locks concurrently.
		if err := win.Lock(mpi.LockShared, 0); err != nil {
			return err
		}
		var buf [8]byte
		if err := win.Get(0, 0, buf[:]); err != nil {
			return err
		}
		if err := win.Unlock(0); err != nil {
			return err
		}
		if v := mpi.UnpackInt64s(buf[:])[0]; v != 777 {
			return fmt.Errorf("read %d under shared lock", v)
		}
		return win.Fence()
	})
}

func TestWinLockValidation(t *testing.T) {
	withSession(t, 1, 2, func(p *mpi.Process, s *mpi.Session, g *mpi.Group) error {
		win, err := s.WinCreateFromGroup(g, "lockval", 8)
		if err != nil {
			return err
		}
		defer win.Free()
		if err := win.Lock(99, 0); err == nil {
			return fmt.Errorf("bad lock type accepted")
		}
		if err := win.Lock(mpi.LockShared, 55); err == nil {
			return fmt.Errorf("bad target accepted")
		}
		return nil
	})
}
