package mpi

import "sync"

// Info is an MPI info object: an ordered set of key/value string pairs.
//
// Per the Sessions proposal (paper §III-B5), info objects may be created,
// duplicated, modified, and freed *before* MPI is initialized, and those
// operations must be thread-safe even before a thread level is chosen — so
// the lock is always enabled. None of these paths are on the critical
// communication path.
type Info struct {
	mu   sync.Mutex
	keys []string
	vals map[string]string
}

// NewInfo creates an empty info object (MPI_Info_create). It is legal to
// call before any session or world initialization.
func NewInfo() *Info {
	return &Info{vals: make(map[string]string)}
}

// Set stores a key/value pair (MPI_Info_set).
func (i *Info) Set(key, value string) {
	i.mu.Lock()
	defer i.mu.Unlock()
	if _, ok := i.vals[key]; !ok {
		i.keys = append(i.keys, key)
	}
	i.vals[key] = value
}

// Get returns the value for key (MPI_Info_get).
func (i *Info) Get(key string) (string, bool) {
	if i == nil {
		return "", false
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	v, ok := i.vals[key]
	return v, ok
}

// Delete removes a key (MPI_Info_delete). Deleting an absent key is a
// no-op, unlike MPI's error; Go callers can probe with Get first.
func (i *Info) Delete(key string) {
	i.mu.Lock()
	defer i.mu.Unlock()
	if _, ok := i.vals[key]; !ok {
		return
	}
	delete(i.vals, key)
	for n, k := range i.keys {
		if k == key {
			i.keys = append(i.keys[:n], i.keys[n+1:]...)
			break
		}
	}
}

// Dup deep-copies the info object (MPI_Info_dup).
func (i *Info) Dup() *Info {
	out := NewInfo()
	if i == nil {
		return out
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	for _, k := range i.keys {
		out.keys = append(out.keys, k)
		out.vals[k] = i.vals[k]
	}
	return out
}

// Keys returns the keys in insertion order (MPI_Info_get_nthkey).
func (i *Info) Keys() []string {
	if i == nil {
		return nil
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	out := make([]string, len(i.keys))
	copy(out, i.keys)
	return out
}

// Len returns the number of keys (MPI_Info_get_nkeys).
func (i *Info) Len() int {
	if i == nil {
		return 0
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	return len(i.keys)
}
