package mpi_test

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"gompi/internal/core"
	"gompi/internal/pml"
	"gompi/internal/topo"
	"gompi/mpi"
	"gompi/runtime"
)

// TestRecvFromFailedRankUnblocks: the MPI-level §II-C behaviour — a pending
// receive from a process that dies completes with a proc-failed error
// instead of hanging, letting the survivor roll forward.
func TestRecvFromFailedRankUnblocks(t *testing.T) {
	job, err := runtime.NewJob(runtime.Options{
		Cluster: topo.New(topo.Loopback(3), 1),
		PPN:     3,
		Config:  core.Config{CIDMode: core.CIDExtended},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer job.Shutdown()

	var unblocked sync.WaitGroup
	unblocked.Add(1)
	err = job.Launch(func(p *mpi.Process) error {
		sess, err := p.SessionInit(nil, mpi.ErrorsReturn())
		if err != nil {
			return err
		}
		grp, err := sess.GroupFromPset(mpi.PsetWorld)
		if err != nil {
			return err
		}
		comm, err := sess.CommCreateFromGroup(grp, "fp", nil, nil)
		if err != nil {
			return err
		}
		// Deliberately no deferred Free/Finalize: a crashing process does
		// not clean up, and a deferred Finalize would count as a CLEAN
		// disconnect, suppressing the failure notification (correctly).
		cleanup := func() {
			_ = comm.Free()
			_ = sess.Finalize()
		}
		switch p.JobRank() {
		case 2:
			time.Sleep(20 * time.Millisecond)
			panic("rank 2 dies")
		case 0:
			// Blocking receive from the doomed rank.
			buf := make([]byte, 4)
			start := time.Now()
			_, err := comm.Recv(buf, 2, 7)
			if !errors.Is(err, pml.ErrPeerFailed) {
				return fmt.Errorf("recv returned %v, want ErrPeerFailed", err)
			}
			if mpi.ErrorClassOf(err) != mpi.ErrClassProcFailed {
				return fmt.Errorf("class = %v, want MPI_ERR_PROC_FAILED", mpi.ErrorClassOf(err))
			}
			if time.Since(start) > 10*time.Second {
				return fmt.Errorf("unblocked only by timeout")
			}
			unblocked.Done()
			cleanup()
			return nil
		default:
			cleanup()
			return nil
		}
	})
	if err == nil {
		t.Fatal("expected the injected failure to be reported")
	}
	unblocked.Wait()
}
