package mpi

import (
	"fmt"

	"gompi/internal/coll"
	"gompi/internal/pml"
)

// Glue between communicators and the internal/coll framework: the
// transport adapter, the lazily-built per-communicator module (carrying
// the rank-to-node placement map), and the Info-key algorithm hints.

// collHintPrefix is the Info key prefix selecting a collective algorithm
// per communicator: "gompi_coll_<operation>" = "<algorithm>", e.g.
// gompi_coll_allreduce = ring. Unknown algorithm names are rejected.
const collHintPrefix = "gompi_coll_"

// collTransport adapts a communicator's internal point-to-point helpers
// (which ride the PML, and through it the selected BTLs) to the framework.
type collTransport struct{ c *Comm }

func (t collTransport) Rank() int { return t.c.Rank() }
func (t collTransport) Size() int { return t.c.Size() }
func (t collTransport) Send(buf []byte, dest, tag int) error {
	return t.c.sendT(buf, dest, tag)
}
func (t collTransport) Recv(buf []byte, src, tag int) error {
	return t.c.recvT(buf, src, tag)
}
func (t collTransport) Sendrecv(sendBuf []byte, dest int, recvBuf []byte, src, tag int) error {
	return t.c.sendrecvT(sendBuf, dest, recvBuf, src, tag)
}

// collReq adapts a PML request to the schedule engine's completion handle.
type collReq struct{ r *pml.Request }

func (q collReq) Wait() error {
	_, err := q.r.Wait()
	return err
}

func (q collReq) Test() (bool, error) {
	done, _, err := q.r.Test()
	return done, err
}

// Isend and Irecv make collTransport a coll.NBTransport, so communicator
// collectives run their compiled schedules through the DAG engine (issuing
// every dependency-free step at once) instead of the sequential reference
// executor.
func (t collTransport) Isend(buf []byte, dest, tag int) (coll.Req, error) {
	return collReq{t.c.ch.Isend(dest, tag, buf)}, nil
}

func (t collTransport) Irecv(buf []byte, src, tag int) (coll.Req, error) {
	return collReq{t.c.ch.Irecv(src, tag, buf)}, nil
}

// collModule binds the communicator to the instance's collective framework
// on first use, resolving each member's node from the static placement map
// so the hierarchical component can split the communicator.
func (c *Comm) collModule() (*coll.Module, error) {
	c.mu.Lock()
	if c.coll != nil {
		m := c.coll
		c.mu.Unlock()
		return m, nil
	}
	name := c.name
	c.mu.Unlock()

	inst := c.p.inst
	fw := inst.Coll()
	if fw == nil {
		return nil, fmt.Errorf("mpi: collective framework not initialized")
	}
	var nodes []int
	if client := inst.Client(); client != nil {
		nodes = make([]int, len(c.group.ranks))
		for i, r := range c.group.ranks {
			nodes[i] = client.NodeOf(r)
		}
	}
	m := fw.NewModule(collTransport{c}, nodes, name)
	c.mu.Lock()
	if c.coll == nil {
		c.coll = m
	}
	m = c.coll
	c.mu.Unlock()
	return m, nil
}

// applyCollInfo installs every gompi_coll_* hint from info. Like
// MPI_Comm_set_info, the call must be made with identical hints on every
// member — the algorithm choice is part of the collective's schedule.
func (c *Comm) applyCollInfo(info *Info) error {
	if info.Len() == 0 {
		return nil
	}
	m, err := c.collModule()
	if err != nil {
		return err
	}
	for _, op := range coll.Ops() {
		if algo, ok := info.Get(collHintPrefix + op.String()); ok {
			if err := m.SetHint(op, algo); err != nil {
				return err
			}
		}
	}
	return nil
}

// SetInfo applies info hints to the communicator (MPI_Comm_set_info).
// Recognized keys are the gompi_coll_* algorithm selectors; unknown keys
// are ignored per MPI semantics, but a recognized key with an unknown
// algorithm value errors.
func (c *Comm) SetInfo(info *Info) error {
	if err := c.checkLive(); err != nil {
		return c.errh.invoke(err)
	}
	return c.errh.invoke(c.applyCollInfo(info))
}

// GetInfo returns the hints currently in force on the communicator
// (MPI_Comm_get_info).
func (c *Comm) GetInfo() *Info {
	out := NewInfo()
	c.mu.Lock()
	m := c.coll
	c.mu.Unlock()
	if m == nil {
		return out
	}
	for _, op := range coll.Ops() {
		if h := m.Hint(op); h != "" {
			out.Set(collHintPrefix+op.String(), h)
		}
	}
	return out
}
