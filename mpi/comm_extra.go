package mpi

import (
	"fmt"
)

// SplitType values for CommSplitType.
const (
	// SplitTypeShared groups processes that share a node
	// (MPI_COMM_TYPE_SHARED).
	SplitTypeShared = 1
)

// Create builds a communicator over a subgroup, collective over the WHOLE
// parent communicator (MPI_Comm_create): members not in group pass through
// and receive nil. Works in both CID modes — in consensus mode non-members
// echo the reduction rounds, exactly as Split does.
func (c *Comm) Create(group *Group) (*Comm, error) {
	if err := c.checkLive(); err != nil {
		return nil, c.errh.invoke(err)
	}
	// Translate membership to a color and reuse Split's machinery: members
	// get color 0 ordered by their group rank, others Undefined. This is
	// semantically MPI_Comm_create for a single subgroup.
	color := Undefined
	key := 0
	if r := group.Rank(); r != Undefined {
		// Verify the group is a subset of the communicator.
		pos := make(map[int]bool, c.Size())
		for _, gr := range c.group.ranks {
			pos[gr] = true
		}
		for _, gr := range group.ranks {
			if !pos[gr] {
				return nil, c.errh.invoke(fmt.Errorf("mpi: group member %d not in communicator", gr))
			}
		}
		color, key = 0, r
	}
	return c.Split(color, key)
}

// SplitType partitions the communicator by locality (MPI_Comm_split_type).
// Only SplitTypeShared is defined: the result contains the members sharing
// the calling process's node, ordered by key.
func (c *Comm) SplitType(splitType, key int) (*Comm, error) {
	if err := c.checkLive(); err != nil {
		return nil, c.errh.invoke(err)
	}
	if splitType != SplitTypeShared {
		return nil, c.errh.invoke(fmt.Errorf("%w: split type %d", ErrUnsupported, splitType))
	}
	client := c.p.inst.Client()
	if client == nil {
		return nil, c.errh.invoke(ErrNotInitialized)
	}
	// Color by the lowest job rank on this node: unique per node.
	locals := client.LocalRanks()
	return c.Split(locals[0], key)
}

// RangeIncl includes the group ranks described by (first, last, stride)
// triplets, in order (MPI_Group_range_incl).
func (g *Group) RangeIncl(ranges [][3]int) (*Group, error) {
	var ranks []int
	for _, r := range ranges {
		first, last, stride := r[0], r[1], r[2]
		if stride == 0 {
			return nil, fmt.Errorf("mpi: zero stride in range")
		}
		if stride > 0 {
			for v := first; v <= last; v += stride {
				ranks = append(ranks, v)
			}
		} else {
			for v := first; v >= last; v += stride {
				ranks = append(ranks, v)
			}
		}
	}
	return g.Incl(ranks)
}

// RangeExcl excludes the group ranks described by (first, last, stride)
// triplets (MPI_Group_range_excl).
func (g *Group) RangeExcl(ranges [][3]int) (*Group, error) {
	var ranks []int
	for _, r := range ranges {
		first, last, stride := r[0], r[1], r[2]
		if stride == 0 {
			return nil, fmt.Errorf("mpi: zero stride in range")
		}
		if stride > 0 {
			for v := first; v <= last; v += stride {
				ranks = append(ranks, v)
			}
		} else {
			for v := first; v >= last; v += stride {
				ranks = append(ranks, v)
			}
		}
	}
	return g.Excl(ranks)
}

// Idup is the nonblocking communicator duplication (MPI_Comm_idup). The
// duplicate is delivered through the returned channel when the request
// completes.
func (c *Comm) Idup() (Request, <-chan *Comm, error) {
	if err := c.checkLive(); err != nil {
		return nil, nil, c.errh.invoke(err)
	}
	out := make(chan *Comm, 1)
	req := startGoRequest(func() error {
		dup, err := c.Dup()
		if err != nil {
			return err
		}
		out <- dup
		return nil
	})
	return req, out, nil
}

// CommCreateFromGroup is the package-level spelling of the Sessions
// constructor (MPI_Comm_create_from_group), equivalent to the Session
// method; the group must originate from a session-owning process.
func CommCreateFromGroup(s *Session, group *Group, tag string, info *Info, errh *Errhandler) (*Comm, error) {
	return s.CommCreateFromGroup(group, tag, info, errh)
}
