package mpi_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"gompi/mpi"
)

// TestPartitionedRoundTrip: rank 0 streams a partitioned send to rank 1,
// contributing partitions out of order from concurrent goroutines; rank 1
// consumes partitions as Parrived reports them. Repeats several rounds on
// the same requests and composes Start through StartAll with a persistent
// point-to-point request. Run under -race in make check.
func TestPartitionedRoundTrip(t *testing.T) {
	cfg := propCfg() // low eager limit: large partitions take the rendezvous path
	run(t, 1, 2, cfg, func(p *mpi.Process) error {
		if err := p.Init(); err != nil {
			return err
		}
		defer p.Finalize()
		world := p.CommWorld()
		rank := world.Rank()
		const parts = 8
		const chunk = 640
		const rounds = 4

		if rank == 0 {
			buf := make([]byte, parts*chunk)
			req, err := world.PsendInit(buf, 1, 77, parts)
			if err != nil {
				return err
			}
			if req.Partitions() != parts {
				return fmt.Errorf("partitions = %d, want %d", req.Partitions(), parts)
			}
			// Startable composition with a plain persistent send.
			note := []byte("round-note")
			pp, err := world.SendInit(note, 1, 5)
			if err != nil {
				return err
			}
			for round := 0; round < rounds; round++ {
				for i := range buf {
					buf[i] = byte(round*31 + i)
				}
				if err := mpi.StartAll(req, pp); err != nil {
					return err
				}
				var wg sync.WaitGroup
				for _, q := range rand.Perm(parts) {
					wg.Add(1)
					go func(q int) {
						defer wg.Done()
						if err := req.Pready(q); err != nil {
							t.Errorf("Pready(%d): %v", q, err)
						}
					}(q)
				}
				wg.Wait()
				if err := req.Wait(); err != nil {
					return err
				}
				if _, err := pp.Wait(); err != nil {
					return err
				}
			}
			return req.Free()
		}

		buf := make([]byte, parts*chunk)
		req, err := world.PrecvInit(buf, 0, 77, parts)
		if err != nil {
			return err
		}
		note := make([]byte, 10)
		pp, err := world.RecvInit(note, 0, 5)
		if err != nil {
			return err
		}
		for round := 0; round < rounds; round++ {
			if err := mpi.StartAll(req, pp); err != nil {
				return err
			}
			// Consume partitions as they land; every partition must
			// eventually arrive without Wait.
			seen := make([]bool, parts)
			for n := 0; n < parts; {
				for q := 0; q < parts; q++ {
					if seen[q] {
						continue
					}
					ok, err := req.Parrived(q)
					if err != nil {
						return err
					}
					if !ok {
						continue
					}
					for i := q * chunk; i < (q+1)*chunk; i++ {
						if buf[i] != byte(round*31+i) {
							return fmt.Errorf("round %d partition %d byte %d corrupt", round, q, i)
						}
					}
					seen[q] = true
					n++
				}
			}
			if err := req.Wait(); err != nil {
				return err
			}
			if _, err := pp.Wait(); err != nil {
				return err
			}
			if string(note) != "round-note" {
				return fmt.Errorf("round %d: persistent recv corrupt: %q", round, note)
			}
		}
		return req.Free()
	})
}

// TestPartitionedMisuse covers the wrong-kind and bad-argument paths.
func TestPartitionedMisuse(t *testing.T) {
	run(t, 1, 2, exCfg(), func(p *mpi.Process) error {
		if err := p.Init(); err != nil {
			return err
		}
		defer p.Finalize()
		world := p.CommWorld()
		if world.Rank() != 0 {
			return world.Barrier()
		}
		defer world.Barrier()
		if _, err := world.PsendInit(make([]byte, 8), 1, -3, 2); err == nil {
			return fmt.Errorf("negative tag accepted")
		}
		if _, err := world.PsendInit(make([]byte, 7), 1, 0, 2); err == nil {
			return fmt.Errorf("indivisible buffer accepted")
		}
		if _, err := world.PrecvInit(make([]byte, 8), 9, 0, 2); err == nil {
			return fmt.Errorf("bad src accepted")
		}
		ps, err := world.PsendInit(make([]byte, 8), 1, 0, 2)
		if err != nil {
			return err
		}
		if _, err := ps.Parrived(0); err == nil {
			return fmt.Errorf("Parrived on send request accepted")
		}
		pr, err := world.PrecvInit(make([]byte, 8), 1, 0, 2)
		if err != nil {
			return err
		}
		if err := pr.Pready(0); err == nil {
			return fmt.Errorf("Pready on recv request accepted")
		}
		if err := ps.Free(); err != nil {
			return err
		}
		return pr.Free()
	})
}
