// Package mpi is the public API of the reproduction: an MPI-like
// message-passing library for simulated jobs, implementing both the classic
// World Process Model (Init / Finalize / CommWorld) and the MPI Sessions
// extensions the paper prototypes (SessionInit, process sets, groups from
// psets, communicators from groups).
//
// Each simulated MPI process is a goroutine holding a *Process — the
// analogue of a linked libmpi instance. Obtain Process values from the
// runtime package's launcher.
package mpi

import (
	"errors"
	"fmt"
	"sync"

	"gompi/internal/core"
)

// ThreadLevel is the requested/provided thread support level.
type ThreadLevel int

// Thread support levels (MPI_THREAD_*). The Go implementation is always
// fully thread-safe, so Provided is always ThreadMultiple; the levels exist
// for API fidelity and for the Sessions isolation discussion (§II-B).
const (
	ThreadSingle ThreadLevel = iota
	ThreadFunneled
	ThreadSerialized
	ThreadMultiple
)

func (t ThreadLevel) String() string {
	switch t {
	case ThreadSingle:
		return "MPI_THREAD_SINGLE"
	case ThreadFunneled:
		return "MPI_THREAD_FUNNELED"
	case ThreadSerialized:
		return "MPI_THREAD_SERIALIZED"
	case ThreadMultiple:
		return "MPI_THREAD_MULTIPLE"
	}
	return fmt.Sprintf("ThreadLevel(%d)", int(t))
}

// Errors reported by lifecycle functions.
var (
	ErrAlreadyInitialized = errors.New("mpi: MPI already initialized in this process")
	ErrNotInitialized     = errors.New("mpi: MPI not initialized")
	ErrFinalized          = errors.New("mpi: MPI already finalized")
	ErrSessionFinalized   = errors.New("mpi: session already finalized")
	ErrUnsupported        = errors.New("mpi: operation unsupported in this CID mode")
)

// Process is one simulated MPI process's library state. All methods are
// safe for concurrent use by multiple goroutines ("threads") of the
// process.
type Process struct {
	inst *core.Instance
	rank int

	mu            sync.Mutex
	worldInited   bool
	worldFinal    bool
	wpmSession    *Session
	world, self   *Comm
	sessionSeq    int
	keyvalSeq     int
	processKeyval map[int]any // process-level attribute cache
}

// NewProcess wraps a core instance; called by the runtime launcher.
func NewProcess(inst *core.Instance) *Process {
	return &Process{
		inst:          inst,
		rank:          inst.Rank(),
		processKeyval: make(map[int]any),
	}
}

// JobRank returns the launcher-assigned global rank of this process (the
// information an unstarted MPI process gets from its environment).
func (p *Process) JobRank() int { return p.rank }

// JobSize returns the number of processes in the job.
func (p *Process) JobSize() int { return p.inst.JobSize() }

// Instance exposes the underlying core instance; intended for the runtime
// and benchmarks, not application code.
func (p *Process) Instance() *core.Instance { return p.inst }

// PMLStats is the MPI_T-style performance snapshot of the messaging layer.
type PMLStats struct {
	// FastSent counts messages sent with the 14-byte match header only.
	FastSent uint64
	// ExtSent counts messages that carried the extended (exCID) header —
	// the first-message handshake traffic of §III-B4.
	ExtSent uint64
	// AcksSent / AcksReceived count CID handshake acknowledgements.
	AcksSent     uint64
	AcksReceived uint64
	// Rendezvous counts large-message transfers.
	Rendezvous uint64
	// PostedHits counts inbound messages that matched an already-posted
	// receive; UnexpectedHits counts receives satisfied from the unexpected
	// queue. Their ratio is the classic late-receiver/late-sender signal.
	PostedHits     uint64
	UnexpectedHits uint64
	// DupsDropped counts wire-duplicated packets screened out by the
	// per-peer sequence numbers; ReorderStashed counts out-of-order packets
	// parked until their gap filled. Both stay zero on a healthy fabric.
	DupsDropped    uint64
	ReorderStashed uint64
}

// PMLStatsSnapshot returns the process's current messaging counters; zero
// when MPI is not initialized.
func (p *Process) PMLStatsSnapshot() PMLStats {
	e := p.inst.Engine()
	if e == nil {
		return PMLStats{}
	}
	s := e.Stats()
	return PMLStats{
		FastSent:       s.FastSent,
		ExtSent:        s.ExtSent,
		AcksSent:       s.AcksSent,
		AcksReceived:   s.AcksRecved,
		Rendezvous:     s.Rendezvous,
		PostedHits:     s.PostedHits,
		UnexpectedHits: s.UnexpectedHits,
		DupsDropped:    s.DupsDropped,
		ReorderStashed: s.ReorderStashed,
	}
}

// TransportStats counts the traffic one BTL module has carried for this
// process. The receive-side counters (RecvMsgs, RecvBytes) and Drops are
// meaningful only for real-wire transports like udp, where the module owns
// a socket: Drops counts datagrams rejected before the matcher — malformed
// frames, foreign-job traffic, and reassembly evictions.
type TransportStats struct {
	Msgs      uint64
	Bytes     uint64
	RecvMsgs  uint64
	RecvBytes uint64
	Drops     uint64
}

// BTLStatsSnapshot returns per-transport traffic counters keyed by MCA
// component name ("sm", "udp", "net"); nil when MPI is not initialized.
// Intra-node traffic appearing under "sm" confirms the shared-memory fast
// path is carrying it.
func (p *Process) BTLStatsSnapshot() map[string]TransportStats {
	e := p.inst.Engine()
	if e == nil {
		return nil
	}
	out := make(map[string]TransportStats)
	for name, s := range e.BTLStats() {
		out[name] = TransportStats{
			Msgs:      s.Msgs,
			Bytes:     s.Bytes,
			RecvMsgs:  s.RecvMsgs,
			RecvBytes: s.RecvBytes,
			Drops:     s.Drops,
		}
	}
	return out
}

// FaultStats is a snapshot of the simulated fabric's fault-injection
// counters: what the chaos plan actually did to this job's wire. Killed and
// Revived count the process deaths and respawns the plan triggered — the
// pair the recovery soak metrics (ROADMAP item 4) track against completed
// rebuilds.
type FaultStats struct {
	Dropped     uint64
	Duplicated  uint64
	Delayed     uint64
	Reordered   uint64
	Partitioned uint64
	Killed      uint64
	Revived     uint64
}

// FaultStatsSnapshot returns the fabric's injected-fault counters; zero when
// the process is not backed by a simulated fabric. The counters are
// fabric-global (one chaos plan serves the whole job), so every process of a
// job reports the same values.
func (p *Process) FaultStatsSnapshot() FaultStats {
	f := p.inst.Fabric()
	if f == nil {
		return FaultStats{}
	}
	s := f.FaultStats()
	return FaultStats{
		Dropped:     s.Dropped,
		Duplicated:  s.Duplicated,
		Delayed:     s.Delayed,
		Reordered:   s.Reordered,
		Partitioned: s.Partitioned,
		Killed:      s.Killed,
		Revived:     s.Revived,
	}
}

// CollStats counts collective-framework algorithm invocations, keyed
// "operation/algorithm" (e.g. "allreduce/recursive_doubling"). Together
// with the "coll" trace layer it shows which decision-table entries the
// workload actually exercised.
type CollStats map[string]uint64

// CollStatsSnapshot returns the process's collective algorithm counters;
// nil when MPI is not initialized.
func (p *Process) CollStatsSnapshot() CollStats {
	fw := p.inst.Coll()
	if fw == nil {
		return nil
	}
	return CollStats(fw.Snapshot())
}

// Init initializes the World Process Model (MPI_Init): equivalent to
// InitThread(ThreadSingle).
func (p *Process) Init() error {
	_, err := p.InitThread(ThreadSingle)
	return err
}

// InitThread initializes the World Process Model (MPI_Init_thread). As in
// the prototype (§III-B5), it is restructured to create an internal MPI
// session and then build the built-in world/self communicators, so the WPM
// and the Sessions model share one code path. Unlike SessionInit it may be
// called only once per process.
func (p *Process) InitThread(required ThreadLevel) (ThreadLevel, error) {
	p.mu.Lock()
	if p.worldFinal {
		p.mu.Unlock()
		return 0, ErrFinalized
	}
	if p.worldInited {
		p.mu.Unlock()
		return 0, ErrAlreadyInitialized
	}
	p.mu.Unlock()

	sess, err := p.SessionInit(nil, ErrorsAreFatal())
	if err != nil {
		return 0, err
	}
	sess.name = "wpm-internal"

	// The startup modex: a fence over the whole job. Only node-local peers
	// are fully "added" here; remote endpoints resolve on first
	// communication (§III-B1).
	client := p.inst.Client()
	all := make([]int, p.JobSize())
	for i := range all {
		all[i] = i
	}
	if err := client.Fence(all, false, p.inst.Timeout()); err != nil {
		_ = sess.Finalize()
		return 0, fmt.Errorf("mpi: startup fence: %w", err)
	}

	world, err := newBuiltinComm(p, sess, all, builtinWorld)
	if err != nil {
		_ = sess.Finalize()
		return 0, err
	}
	self, err := newBuiltinComm(p, sess, []int{p.rank}, builtinSelf)
	if err != nil {
		world.freeLocal()
		_ = sess.Finalize()
		return 0, err
	}

	p.mu.Lock()
	p.worldInited = true
	p.wpmSession = sess
	p.world = world
	p.self = self
	p.mu.Unlock()
	return ThreadMultiple, nil
}

// Initialized reports whether the World Process Model is live
// (MPI_Initialized).
func (p *Process) Initialized() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.worldInited
}

// Finalized reports whether MPI_Finalize has completed (MPI_Finalized).
func (p *Process) Finalized() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.worldFinal
}

// CommWorld returns the built-in world communicator (MPI_COMM_WORLD); nil
// before Init or after Finalize.
func (p *Process) CommWorld() *Comm {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.world
}

// CommSelf returns the built-in self communicator (MPI_COMM_SELF).
func (p *Process) CommSelf() *Comm {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.self
}

// Finalize tears down the World Process Model (MPI_Finalize). The built-in
// communicators are freed and the internal session finalized; if no other
// session is live, the instance's cleanup callbacks run. Sessions may still
// be created afterwards — the WPM itself, per the MPI standard, cannot be
// re-initialized.
func (p *Process) Finalize() error {
	p.mu.Lock()
	if !p.worldInited {
		p.mu.Unlock()
		if p.worldFinal {
			return ErrFinalized
		}
		return ErrNotInitialized
	}
	world, self, sess := p.world, p.self, p.wpmSession
	p.world, p.self, p.wpmSession = nil, nil, nil
	p.worldInited = false
	p.worldFinal = true
	p.mu.Unlock()

	// A final fence keeps finalize collective, so no peer tears down its
	// endpoint while others still drain traffic.
	client := p.inst.Client()
	all := make([]int, p.JobSize())
	for i := range all {
		all[i] = i
	}
	fenceErr := client.Fence(all, false, p.inst.Timeout())

	world.freeLocal()
	self.freeLocal()
	if err := sess.Finalize(); err != nil {
		return err
	}
	return fenceErr
}

// SessionInit creates a new MPI session (MPI_Session_init). It is local,
// comparatively light-weight, thread-safe, and may be called any number of
// times, including after all previous sessions were finalized — the
// re-initialization capability motivating the proposal (§II-A).
func (p *Process) SessionInit(info *Info, errh *Errhandler) (*Session, error) {
	if errh == nil {
		errh = ErrorsReturn()
	}
	if err := p.inst.Acquire(); err != nil {
		return nil, errh.invoke(err)
	}
	p.mu.Lock()
	p.sessionSeq++
	name := fmt.Sprintf("session-%d", p.sessionSeq)
	p.mu.Unlock()
	return &Session{
		p:    p,
		name: name,
		info: info.Dup(),
		errh: errh,
	}, nil
}

// KeyvalCreate allocates a new attribute key usable on communicators and at
// process level (MPI_Comm_create_keyval). Legal before initialization.
func (p *Process) KeyvalCreate() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.keyvalSeq++
	return p.keyvalSeq
}

// AttrSet caches a process-level attribute; legal before initialization
// and always thread-safe (§III-B5).
func (p *Process) AttrSet(keyval int, value any) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.processKeyval[keyval] = value
}

// AttrGet retrieves a process-level attribute.
func (p *Process) AttrGet(keyval int) (any, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	v, ok := p.processKeyval[keyval]
	return v, ok
}

// AttrDelete removes a process-level attribute.
func (p *Process) AttrDelete(keyval int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.processKeyval, keyval)
}
