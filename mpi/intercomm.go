package mpi

import (
	"fmt"
)

// Intercommunicators. MPI 4.0 added MPI_Intercomm_create_from_groups
// precisely for the Sessions model: two disjoint groups — say the client
// and server psets of §II-C — build a communication context with no parent
// communicator and no MPI_COMM_WORLD bridge.
//
// The implementation rides on one exCID channel over the union of the two
// groups, ordered deterministically (the group containing the lowest
// global rank first), so both sides agree on rank translation without
// additional negotiation.

// InterComm connects two disjoint groups of processes.
type InterComm struct {
	comm        *Comm // bridge communicator over the union
	localStart  int
	localSize   int
	remoteStart int
	remoteSize  int
	localRank   int // my rank within the local group
}

// InterCommCreateFromGroups builds an intercommunicator between localGroup
// (which must contain the caller) and remoteGroup (which must be disjoint
// from it). Collective over the union of both groups; all members must
// pass the same tag and the same two groups (each from its own side's
// perspective). This is MPI_Intercomm_create_from_groups.
func (s *Session) InterCommCreateFromGroups(localGroup, remoteGroup *Group, tag string, errh *Errhandler) (*InterComm, error) {
	if err := s.checkLive(); err != nil {
		return nil, s.errh.invoke(err)
	}
	if errh == nil {
		errh = s.errh
	}
	myLocal := localGroup.Rank()
	if myLocal == Undefined {
		return nil, s.errh.invoke(fmt.Errorf("mpi: calling process not in the local group"))
	}
	// Disjointness check.
	in := make(map[int]bool, localGroup.Size())
	for _, r := range localGroup.ranks {
		in[r] = true
	}
	for _, r := range remoteGroup.ranks {
		if in[r] {
			return nil, s.errh.invoke(fmt.Errorf("mpi: intercomm groups overlap at rank %d", r))
		}
	}
	if remoteGroup.Size() == 0 {
		return nil, s.errh.invoke(fmt.Errorf("mpi: empty remote group"))
	}

	// Deterministic union ordering: the group holding the smallest global
	// rank comes first. Both sides compute the same ordering.
	localFirst := minRank(localGroup.ranks) < minRank(remoteGroup.ranks)
	var union []int
	if localFirst {
		union = append(append([]int{}, localGroup.ranks...), remoteGroup.ranks...)
	} else {
		union = append(append([]int{}, remoteGroup.ranks...), localGroup.ranks...)
	}
	bridge, err := s.CommCreateFromGroup(newGroup(s.p, union), "icomm/"+tag, nil, errh)
	if err != nil {
		return nil, err
	}
	ic := &InterComm{comm: bridge, localRank: myLocal}
	if localFirst {
		ic.localStart, ic.localSize = 0, localGroup.Size()
		ic.remoteStart, ic.remoteSize = localGroup.Size(), remoteGroup.Size()
	} else {
		ic.remoteStart, ic.remoteSize = 0, remoteGroup.Size()
		ic.localStart, ic.localSize = remoteGroup.Size(), localGroup.Size()
	}
	return ic, nil
}

func minRank(ranks []int) int {
	m := ranks[0]
	for _, r := range ranks[1:] {
		if r < m {
			m = r
		}
	}
	return m
}

// Rank returns the caller's rank within its local group.
func (ic *InterComm) Rank() int { return ic.localRank }

// Size returns the local group's size (MPI_Comm_size on an intercomm).
func (ic *InterComm) Size() int { return ic.localSize }

// RemoteSize returns the remote group's size (MPI_Comm_remote_size).
func (ic *InterComm) RemoteSize() int { return ic.remoteSize }

// LocalGroup returns the local group (MPI_Comm_group).
func (ic *InterComm) LocalGroup() *Group {
	return newGroup(ic.comm.p, ic.comm.group.ranks[ic.localStart:ic.localStart+ic.localSize])
}

// RemoteGroup returns the remote group (MPI_Comm_remote_group).
func (ic *InterComm) RemoteGroup() *Group {
	return newGroup(ic.comm.p, ic.comm.group.ranks[ic.remoteStart:ic.remoteStart+ic.remoteSize])
}

func (ic *InterComm) checkRemote(rank int) error {
	if rank < 0 || rank >= ic.remoteSize {
		return fmt.Errorf("mpi: remote rank %d out of range [0,%d)", rank, ic.remoteSize)
	}
	return nil
}

// Send sends to a rank of the REMOTE group; intercommunicator
// point-to-point always addresses the other side.
func (ic *InterComm) Send(buf []byte, remoteRank, tag int) error {
	if err := ic.checkRemote(remoteRank); err != nil {
		return ic.comm.errh.invoke(err)
	}
	return ic.comm.errh.invoke(ic.comm.ch.Send(ic.remoteStart+remoteRank, tag, buf))
}

// Recv receives from a rank of the remote group (or AnySource within it).
// The returned Status.Source is a remote-group rank.
func (ic *InterComm) Recv(buf []byte, remoteRank, tag int) (Status, error) {
	src := remoteRank
	if remoteRank != AnySource {
		if err := ic.checkRemote(remoteRank); err != nil {
			return Status{}, ic.comm.errh.invoke(err)
		}
		src = ic.remoteStart + remoteRank
	}
	st, err := ic.comm.ch.Recv(src, tag, buf)
	out := fromPML(st)
	if err == nil {
		out.Source = st.Source - ic.remoteStart
		if out.Source < 0 || out.Source >= ic.remoteSize {
			err = fmt.Errorf("mpi: intercomm received from non-remote rank %d", st.Source)
		}
	}
	return out, ic.comm.errh.invoke(err)
}

// Isend starts a nonblocking send to a remote rank.
func (ic *InterComm) Isend(buf []byte, remoteRank, tag int) Request {
	if err := ic.checkRemote(remoteRank); err != nil {
		return startGoRequest(func() error { return ic.comm.errh.invoke(err) })
	}
	return pmlRequest{ic.comm.ch.Isend(ic.remoteStart+remoteRank, tag, buf)}
}

// Barrier completes when every process in BOTH groups has entered
// (MPI_Barrier on an intercomm).
func (ic *InterComm) Barrier() error {
	return ic.comm.Barrier()
}

// Bcast implements intercommunicator broadcast: data moves from one root
// process in the root group to every process of the other group.
// rootIsLocal selects whether the calling side is the root group; root is
// the root's rank within the root group. Processes of the root group other
// than the root contribute nothing and their buffers are untouched.
func (ic *InterComm) Bcast(buf []byte, root int, rootIsLocal bool) error {
	if rootIsLocal {
		if root < 0 || root >= ic.localSize {
			return ic.comm.errh.invoke(fmt.Errorf("mpi: bcast root %d out of local range", root))
		}
		if ic.localRank == root {
			// Linear fan-out to the remote group.
			tag := ic.comm.nextCollTag()
			for r := 0; r < ic.remoteSize; r++ {
				if err := ic.comm.ch.Send(ic.remoteStart+r, tag, buf); err != nil {
					return ic.comm.errh.invoke(err)
				}
			}
			return nil
		}
		// Non-root members of the root group advance the collective tag to
		// stay aligned with the root.
		ic.comm.nextCollTag()
		return nil
	}
	if root < 0 || root >= ic.remoteSize {
		return ic.comm.errh.invoke(fmt.Errorf("mpi: bcast root %d out of remote range", root))
	}
	tag := ic.comm.nextCollTag()
	_, err := ic.comm.ch.Recv(ic.remoteStart+root, tag, buf)
	return ic.comm.errh.invoke(err)
}

// Merge combines both groups into one intracommunicator
// (MPI_Intercomm_merge). Processes passing high=false are ordered before
// those passing high=true; each group must pass a uniform value, and the
// two groups must differ (as the standard requires for a defined order).
func (ic *InterComm) Merge(high bool) (*Comm, error) {
	sess := ic.comm.sess
	if sess == nil {
		return nil, fmt.Errorf("mpi: intercomm has no session")
	}
	var union []int
	lg := ic.comm.group.ranks[ic.localStart : ic.localStart+ic.localSize]
	rg := ic.comm.group.ranks[ic.remoteStart : ic.remoteStart+ic.remoteSize]
	if high {
		union = append(append([]int{}, rg...), lg...)
	} else {
		union = append(append([]int{}, lg...), rg...)
	}
	seq := ic.comm.p.inst.NextCommSeq(fmt.Sprintf("merge/%v", ic.comm.ch.Ex()))
	return sess.CommCreateFromGroup(newGroup(ic.comm.p, union),
		fmt.Sprintf("merge/%d.%d/%d", ic.comm.ch.Ex().PGCID, ic.comm.ch.Ex().Sub, seq), nil, ic.comm.errh)
}

// Free releases the intercommunicator.
func (ic *InterComm) Free() error { return ic.comm.Free() }
