package mpi

import (
	"fmt"
)

// User-defined reduction operations (MPI_Op_create). A UserOp combines
// elements with an application-supplied function; as in MPI, the function
// must be associative, and the implementation may apply it in any
// associative bracketing. With root 0 the operands combine in ascending
// rank order (left to right); other roots rotate that order, so
// non-commutative combiners should reduce to root 0.
type UserOp struct {
	name string
	fn   func(inout, in []byte, count int, dt Datatype) error
}

// OpCreate builds a user-defined reduction operation. fn must implement
// inout[i] = fn(inout[i], in[i]) element-wise for count elements of dt.
func OpCreate(name string, fn func(inout, in []byte, count int, dt Datatype) error) *UserOp {
	return &UserOp{name: name, fn: fn}
}

// Name returns the operation's name.
func (o *UserOp) Name() string { return o.name }

// reducerFn is the internal element-wise combiner used by the reduction
// trees: inout = op(inout, in).
type reducerFn func(inout, in []byte, count int) error

func builtinReducer(op Op, dt Datatype) reducerFn {
	return func(inout, in []byte, count int) error {
		return reduce(op, dt, inout, in, count)
	}
}

func userReducer(op *UserOp, dt Datatype) reducerFn {
	return func(inout, in []byte, count int) error {
		return op.fn(inout, in, count, dt)
	}
}

// ReduceUser is MPI_Reduce with a user-defined operation.
func (c *Comm) ReduceUser(sendBuf, recvBuf []byte, count int, dt Datatype, op *UserOp, root int) error {
	if err := c.checkLive(); err != nil {
		return c.errh.invoke(err)
	}
	if op == nil {
		return c.errh.invoke(fmt.Errorf("mpi: nil user operation"))
	}
	if root < 0 || root >= c.Size() {
		return c.errh.invoke(fmt.Errorf("mpi: reduce root %d out of range", root))
	}
	nbytes := count * dt.Size()
	if len(sendBuf) < nbytes {
		return c.errh.invoke(fmt.Errorf("mpi: reduce send buffer %d < %d bytes", len(sendBuf), nbytes))
	}
	tag := c.nextCollTag()
	return c.errh.invoke(c.reduceTreeWithFn(sendBuf, recvBuf, count, dt, userReducer(op, dt), root, tag))
}

// AllreduceUser is MPI_Allreduce with a user-defined operation.
func (c *Comm) AllreduceUser(sendBuf, recvBuf []byte, count int, dt Datatype, op *UserOp) error {
	if err := c.checkLive(); err != nil {
		return c.errh.invoke(err)
	}
	if op == nil {
		return c.errh.invoke(fmt.Errorf("mpi: nil user operation"))
	}
	nbytes := count * dt.Size()
	if len(sendBuf) < nbytes || len(recvBuf) < nbytes {
		return c.errh.invoke(fmt.Errorf("mpi: allreduce buffers too small for %d x %s", count, dt))
	}
	rtag := c.nextCollTag()
	btag := c.nextCollTag()
	if err := c.reduceTreeWithFn(sendBuf, recvBuf, count, dt, userReducer(op, dt), 0, rtag); err != nil {
		return c.errh.invoke(err)
	}
	return c.errh.invoke(c.bcastWithTag(recvBuf[:nbytes], 0, btag))
}

// reduceTreeWithFn is the binomial reduction generalized over a combiner.
// For non-commutative combiners, operands are ordered so that lower ranks
// appear on the left, matching the builtin path's bracketing.
func (c *Comm) reduceTreeWithFn(sendBuf, recvBuf []byte, count int, dt Datatype, fn reducerFn, root, tag int) error {
	rank, size := c.Rank(), c.Size()
	nbytes := count * dt.Size()
	acc := make([]byte, nbytes)
	copy(acc, sendBuf[:nbytes])
	if size > 1 {
		vrank := (rank - root + size) % size
		toReal := func(v int) int { return (v + root) % size }
		tmp := make([]byte, nbytes)
		mask := 1
		for mask < size {
			if vrank&mask != 0 {
				if err := c.sendT(acc, toReal(vrank-mask), tag); err != nil {
					return err
				}
				break
			}
			if peer := vrank + mask; peer < size {
				if err := c.recvT(tmp, toReal(peer), tag); err != nil {
					return err
				}
				// acc holds lower ranks' contribution: acc = fn(acc, tmp).
				if err := fn(acc, tmp, count); err != nil {
					return err
				}
			}
			mask <<= 1
		}
	}
	if rank == root {
		if len(recvBuf) < nbytes {
			return fmt.Errorf("mpi: reduce recv buffer %d < %d bytes", len(recvBuf), nbytes)
		}
		copy(recvBuf, acc)
	}
	return nil
}
