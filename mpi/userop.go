package mpi

import (
	"fmt"

	"gompi/internal/coll"
)

// User-defined reduction operations (MPI_Op_create). A UserOp combines
// elements with an application-supplied function; as in MPI, the function
// must be associative, and the implementation may apply it in any
// associative bracketing. With root 0 the operands combine in ascending
// rank order (left to right); other roots rotate that order, so
// non-commutative combiners should reduce to root 0.
type UserOp struct {
	name string
	fn   func(inout, in []byte, count int, dt Datatype) error
}

// OpCreate builds a user-defined reduction operation. fn must implement
// inout[i] = fn(inout[i], in[i]) element-wise for count elements of dt.
func OpCreate(name string, fn func(inout, in []byte, count int, dt Datatype) error) *UserOp {
	return &UserOp{name: name, fn: fn}
}

// Name returns the operation's name.
func (o *UserOp) Name() string { return o.name }

// builtinReducer and userReducer bind an operation and datatype into the
// framework's element-wise combiner shape: inout = op(inout, in).

func builtinReducer(op Op, dt Datatype) coll.ReduceFunc {
	return func(inout, in []byte, count int) error {
		return reduce(op, dt, inout, in, count)
	}
}

func userReducer(op *UserOp, dt Datatype) coll.ReduceFunc {
	return func(inout, in []byte, count int) error {
		return op.fn(inout, in, count, dt)
	}
}

// ReduceUser is MPI_Reduce with a user-defined operation.
func (c *Comm) ReduceUser(sendBuf, recvBuf []byte, count int, dt Datatype, op *UserOp, root int) error {
	if err := c.checkLive(); err != nil {
		return c.errh.invoke(err)
	}
	if op == nil {
		return c.errh.invoke(fmt.Errorf("mpi: nil user operation"))
	}
	if root < 0 || root >= c.Size() {
		return c.errh.invoke(fmt.Errorf("mpi: reduce root %d out of range", root))
	}
	nbytes := count * dt.Size()
	if len(sendBuf) < nbytes {
		return c.errh.invoke(fmt.Errorf("mpi: reduce send buffer %d < %d bytes", len(sendBuf), nbytes))
	}
	if c.Rank() == root && len(recvBuf) < nbytes {
		return c.errh.invoke(fmt.Errorf("mpi: reduce recv buffer %d < %d bytes", len(recvBuf), nbytes))
	}
	m, err := c.collModule()
	if err != nil {
		return c.errh.invoke(err)
	}
	tag := c.nextCollTag()
	// User operations are treated as non-commutative: the framework only
	// runs order-preserving shapes (operands fold in ascending vrank order).
	return c.errh.invoke(m.Reduce(sendBuf, recvBuf, count, dt.Size(), userReducer(op, dt), false, root, tag))
}

// AllreduceUser is MPI_Allreduce with a user-defined operation.
func (c *Comm) AllreduceUser(sendBuf, recvBuf []byte, count int, dt Datatype, op *UserOp) error {
	if err := c.checkLive(); err != nil {
		return c.errh.invoke(err)
	}
	if op == nil {
		return c.errh.invoke(fmt.Errorf("mpi: nil user operation"))
	}
	nbytes := count * dt.Size()
	if len(sendBuf) < nbytes || len(recvBuf) < nbytes {
		return c.errh.invoke(fmt.Errorf("mpi: allreduce buffers too small for %d x %s", count, dt))
	}
	m, err := c.collModule()
	if err != nil {
		return c.errh.invoke(err)
	}
	tag := c.nextCollTag()
	// Non-commutative dispatch keeps the framework off the reordering
	// algorithms (ring, hier); recursive doubling and reduce+bcast both
	// preserve the ascending-rank bracketing.
	return c.errh.invoke(m.Allreduce(sendBuf, recvBuf, count, dt.Size(), userReducer(op, dt), false, tag))
}
