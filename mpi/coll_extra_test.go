package mpi_test

import (
	"fmt"
	"testing"

	"gompi/mpi"
)

func TestScanInclusive(t *testing.T) {
	withWorld(t, 1, 4, exCfg(), func(p *mpi.Process, world *mpi.Comm) error {
		in := mpi.PackInt64s([]int64{int64(world.Rank() + 1)})
		out := make([]byte, 8)
		if err := world.Scan(in, out, 1, mpi.Int64, mpi.OpSum); err != nil {
			return err
		}
		got := mpi.UnpackInt64s(out)[0]
		r := int64(world.Rank())
		want := (r + 1) * (r + 2) / 2 // 1+2+...+(rank+1)
		if got != want {
			return fmt.Errorf("rank %d scan = %d, want %d", world.Rank(), got, want)
		}
		return nil
	})
}

func TestExscanExclusive(t *testing.T) {
	withWorld(t, 2, 2, exCfg(), func(p *mpi.Process, world *mpi.Comm) error {
		in := mpi.PackInt64s([]int64{int64(world.Rank() + 1)})
		out := mpi.PackInt64s([]int64{-999}) // sentinel: untouched at rank 0
		if err := world.Exscan(in, out, 1, mpi.Int64, mpi.OpSum); err != nil {
			return err
		}
		got := mpi.UnpackInt64s(out)[0]
		if world.Rank() == 0 {
			if got != -999 {
				return fmt.Errorf("rank 0 exscan buffer modified: %d", got)
			}
			return nil
		}
		r := int64(world.Rank())
		want := r * (r + 1) / 2 // 1+2+...+rank
		if got != want {
			return fmt.Errorf("rank %d exscan = %d, want %d", world.Rank(), got, want)
		}
		return nil
	})
}

func TestScanNonCommutativeOrder(t *testing.T) {
	// MAX is commutative; use subtraction-like check via prefix strings?
	// Instead verify prefix ordering with OpProd over distinct primes: the
	// product is order-insensitive, so assert the exact prefix VALUES which
	// only hold if each rank's contribution is included exactly once.
	withWorld(t, 1, 3, exCfg(), func(p *mpi.Process, world *mpi.Comm) error {
		primes := []int64{2, 3, 5}
		in := mpi.PackInt64s([]int64{primes[world.Rank()]})
		out := make([]byte, 8)
		if err := world.Scan(in, out, 1, mpi.Int64, mpi.OpProd); err != nil {
			return err
		}
		want := []int64{2, 6, 30}[world.Rank()]
		if got := mpi.UnpackInt64s(out)[0]; got != want {
			return fmt.Errorf("rank %d: %d != %d", world.Rank(), got, want)
		}
		return nil
	})
}

func TestReduceScatterBlock(t *testing.T) {
	withWorld(t, 2, 2, exCfg(), func(p *mpi.Process, world *mpi.Comm) error {
		n := world.Size()
		// Each rank contributes vector [rank, rank, rank, rank] (one value
		// per destination block).
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = int64(world.Rank() * (i + 1))
		}
		out := make([]byte, 8)
		if err := world.ReduceScatterBlock(mpi.PackInt64s(vals), out, 1, mpi.Int64, mpi.OpSum); err != nil {
			return err
		}
		// Block i = sum over ranks r of r*(i+1) = (i+1) * sum(r).
		sumR := int64(n * (n - 1) / 2)
		want := int64(world.Rank()+1) * sumR
		if got := mpi.UnpackInt64s(out)[0]; got != want {
			return fmt.Errorf("rank %d: %d != %d", world.Rank(), got, want)
		}
		return nil
	})
}

func TestAllgatherv(t *testing.T) {
	withWorld(t, 2, 2, exCfg(), func(p *mpi.Process, world *mpi.Comm) error {
		n := world.Size()
		// Rank r contributes r+1 bytes of value 'a'+r.
		counts := make([]int, n)
		displs := make([]int, n)
		total := 0
		for r := 0; r < n; r++ {
			counts[r] = r + 1
			displs[r] = total
			total += counts[r]
		}
		mine := make([]byte, counts[world.Rank()])
		for i := range mine {
			mine[i] = byte('a' + world.Rank())
		}
		all := make([]byte, total)
		if err := world.Allgatherv(mine, all, counts, displs); err != nil {
			return err
		}
		for r := 0; r < n; r++ {
			for i := 0; i < counts[r]; i++ {
				if all[displs[r]+i] != byte('a'+r) {
					return fmt.Errorf("block %d corrupt: %q", r, all)
				}
			}
		}
		return nil
	})
}

func TestGathervScatterv(t *testing.T) {
	withWorld(t, 1, 3, exCfg(), func(p *mpi.Process, world *mpi.Comm) error {
		const root = 1
		n := world.Size()
		counts := []int{2, 3, 4}
		displs := []int{0, 2, 5}
		mine := make([]byte, counts[world.Rank()])
		for i := range mine {
			mine[i] = byte(world.Rank()*10 + i)
		}
		var all []byte
		if world.Rank() == root {
			all = make([]byte, 9)
		}
		if err := world.Gatherv(mine, all, counts, displs, root); err != nil {
			return err
		}
		if world.Rank() == root {
			for r := 0; r < n; r++ {
				for i := 0; i < counts[r]; i++ {
					if all[displs[r]+i] != byte(r*10+i) {
						return fmt.Errorf("gatherv block %d corrupt: %v", r, all)
					}
				}
			}
			for i := range all {
				all[i] += 100
			}
		}
		back := make([]byte, counts[world.Rank()])
		if err := world.Scatterv(all, counts, displs, back, root); err != nil {
			return err
		}
		for i := range back {
			if back[i] != byte(world.Rank()*10+i)+100 {
				return fmt.Errorf("scatterv rank %d byte %d = %d", world.Rank(), i, back[i])
			}
		}
		return nil
	})
}

func TestIallreduceAndIbcast(t *testing.T) {
	withWorld(t, 2, 2, exCfg(), func(p *mpi.Process, world *mpi.Comm) error {
		in := mpi.PackInt64s([]int64{int64(world.Rank())})
		out := make([]byte, 8)
		req, err := world.Iallreduce(in, out, 1, mpi.Int64, mpi.OpMax)
		if err != nil {
			return err
		}
		if _, err := req.Wait(); err != nil {
			return err
		}
		if got := mpi.UnpackInt64s(out)[0]; got != 3 {
			return fmt.Errorf("iallreduce max = %d", got)
		}
		buf := []byte{0}
		if world.Rank() == 2 {
			buf[0] = 42
		}
		breq, err := world.Ibcast(buf, 2)
		if err != nil {
			return err
		}
		if _, err := breq.Wait(); err != nil {
			return err
		}
		if buf[0] != 42 {
			return fmt.Errorf("ibcast = %d", buf[0])
		}
		return nil
	})
}

func TestSsendCompletesOnMatch(t *testing.T) {
	withWorld(t, 1, 2, exCfg(), func(p *mpi.Process, world *mpi.Comm) error {
		if world.Rank() == 0 {
			// Synchronous send must not complete before the receive is
			// posted; with the blocking form we can only verify it
			// round-trips correctly, and use Issend + Test for the
			// no-early-completion property.
			req := world.Issend([]byte("sync"), 1, 9)
			done, _, _ := req.Test()
			if done {
				return fmt.Errorf("Issend completed before any receive was posted")
			}
			// Tell rank 1 to post the receive now.
			if err := world.Send([]byte{1}, 1, 10); err != nil {
				return err
			}
			if _, err := req.Wait(); err != nil {
				return err
			}
			return world.Ssend([]byte("again"), 1, 11)
		}
		var go1 [1]byte
		if _, err := world.Recv(go1[:], 0, 10); err != nil {
			return err
		}
		buf := make([]byte, 5)
		st, err := world.Recv(buf, 0, 9)
		if err != nil {
			return err
		}
		if string(buf[:st.Count]) != "sync" {
			return fmt.Errorf("got %q", buf[:st.Count])
		}
		if _, err := world.Recv(buf, 0, 11); err != nil {
			return err
		}
		return nil
	})
}

func TestCollectiveBufferValidation(t *testing.T) {
	withWorld(t, 1, 2, exCfg(), func(p *mpi.Process, world *mpi.Comm) error {
		short := make([]byte, 4)
		if err := world.Scan(short, short, 1, mpi.Int64, mpi.OpSum); err == nil {
			return fmt.Errorf("short scan buffer accepted")
		}
		if err := world.Allgatherv(nil, nil, []int{1}, []int{0}); err == nil {
			return fmt.Errorf("wrong-length counts accepted")
		}
		if err := world.ReduceScatterBlock(short, short, 1, mpi.Int64, mpi.OpSum); err == nil {
			return fmt.Errorf("short reduce_scatter buffer accepted")
		}
		return nil
	})
}
