package mpi

import (
	"fmt"
)

// Cartesian process topologies (MPI_Cart_*), the structured-mesh
// decomposition used by applications like 2MESH's L0 library.

// CartComm is a communicator with an attached Cartesian topology.
type CartComm struct {
	*Comm
	dims    []int
	periods []bool
}

// CartCreate attaches an ndims-dimensional Cartesian topology to the
// members of c (MPI_Cart_create). The product of dims must equal the
// communicator size; reorder is accepted for API parity but ranks are
// never reordered (as most MPI implementations also choose).
func (c *Comm) CartCreate(dims []int, periods []bool, reorder bool) (*CartComm, error) {
	if err := c.checkLive(); err != nil {
		return nil, c.errh.invoke(err)
	}
	if len(dims) == 0 || len(dims) != len(periods) {
		return nil, c.errh.invoke(fmt.Errorf("mpi: cart dims/periods length mismatch"))
	}
	n := 1
	for _, d := range dims {
		if d <= 0 {
			return nil, c.errh.invoke(fmt.Errorf("mpi: cart dimension %d not positive", d))
		}
		n *= d
	}
	if n != c.Size() {
		return nil, c.errh.invoke(fmt.Errorf("mpi: cart grid %d != comm size %d", n, c.Size()))
	}
	dup, err := c.Dup()
	if err != nil {
		return nil, err
	}
	cart := &CartComm{
		Comm:    dup,
		dims:    append([]int(nil), dims...),
		periods: append([]bool(nil), periods...),
	}
	cart.SetName(fmt.Sprintf("%s+cart%v", c.Name(), dims))
	return cart, nil
}

// DimsCreate factors nnodes into ndims balanced dimensions
// (MPI_Dims_create). Dimensions fixed to non-zero values in dims are kept.
func DimsCreate(nnodes, ndims int, dims []int) ([]int, error) {
	if len(dims) == 0 {
		dims = make([]int, ndims)
	}
	if len(dims) != ndims {
		return nil, fmt.Errorf("mpi: dims length %d != ndims %d", len(dims), ndims)
	}
	out := append([]int(nil), dims...)
	remaining := nnodes
	free := 0
	for _, d := range out {
		switch {
		case d < 0:
			return nil, fmt.Errorf("mpi: negative dimension %d", d)
		case d > 0:
			if remaining%d != 0 {
				return nil, fmt.Errorf("mpi: fixed dims do not divide %d", nnodes)
			}
			remaining /= d
		default:
			free++
		}
	}
	if free == 0 {
		if remaining != 1 {
			return nil, fmt.Errorf("mpi: fixed dims do not multiply to %d", nnodes)
		}
		return out, nil
	}
	// Greedy balanced factorization: repeatedly assign the largest prime
	// factor to the currently smallest free dimension.
	factors := primeFactors(remaining)
	vals := make([]int, free)
	for i := range vals {
		vals[i] = 1
	}
	for i := len(factors) - 1; i >= 0; i-- {
		min := 0
		for j := 1; j < free; j++ {
			if vals[j] < vals[min] {
				min = j
			}
		}
		vals[min] *= factors[i]
	}
	// Larger dimensions first, matching common MPI behaviour.
	for i := 0; i < free; i++ {
		for j := i + 1; j < free; j++ {
			if vals[j] > vals[i] {
				vals[i], vals[j] = vals[j], vals[i]
			}
		}
	}
	k := 0
	for i, d := range out {
		if d == 0 {
			out[i] = vals[k]
			k++
		}
	}
	return out, nil
}

func primeFactors(n int) []int {
	var out []int
	for p := 2; p*p <= n; p++ {
		for n%p == 0 {
			out = append(out, p)
			n /= p
		}
	}
	if n > 1 {
		out = append(out, n)
	}
	return out
}

// Dims returns the topology's dimensions.
func (c *CartComm) Dims() []int { return append([]int(nil), c.dims...) }

// Coords returns the Cartesian coordinates of a rank (MPI_Cart_coords).
func (c *CartComm) Coords(rank int) ([]int, error) {
	if rank < 0 || rank >= c.Size() {
		return nil, fmt.Errorf("mpi: cart rank %d out of range", rank)
	}
	coords := make([]int, len(c.dims))
	for i := len(c.dims) - 1; i >= 0; i-- {
		coords[i] = rank % c.dims[i]
		rank /= c.dims[i]
	}
	return coords, nil
}

// CartRank returns the rank at the given coordinates (MPI_Cart_rank).
// Coordinates in periodic dimensions wrap; out-of-range coordinates in
// non-periodic dimensions are an error.
func (c *CartComm) CartRank(coords []int) (int, error) {
	if len(coords) != len(c.dims) {
		return 0, fmt.Errorf("mpi: cart coords length %d != ndims %d", len(coords), len(c.dims))
	}
	rank := 0
	for i, v := range coords {
		d := c.dims[i]
		if c.periods[i] {
			v = ((v % d) + d) % d
		} else if v < 0 || v >= d {
			return 0, fmt.Errorf("mpi: coordinate %d out of range in non-periodic dim %d", v, i)
		}
		rank = rank*d + v
	}
	return rank, nil
}

// Shift returns the source and destination ranks for a displacement along
// one dimension (MPI_Cart_shift). In non-periodic dimensions a neighbour
// off the grid is ProcNull.
func (c *CartComm) Shift(dim, disp int) (src, dst int, err error) {
	if dim < 0 || dim >= len(c.dims) {
		return 0, 0, fmt.Errorf("mpi: cart dim %d out of range", dim)
	}
	coords, err := c.Coords(c.Rank())
	if err != nil {
		return 0, 0, err
	}
	neighbour := func(delta int) int {
		cc := append([]int(nil), coords...)
		cc[dim] += delta
		if !c.periods[dim] && (cc[dim] < 0 || cc[dim] >= c.dims[dim]) {
			return ProcNull
		}
		r, err := c.CartRank(cc)
		if err != nil {
			return ProcNull
		}
		return r
	}
	return neighbour(-disp), neighbour(disp), nil
}

// ProcNull is the null process rank (MPI_PROC_NULL): sends to it and
// receives from it are no-ops at the CartComm convenience layer.
const ProcNull = -3

// SendrecvShift exchanges buffers with the two neighbours along a
// dimension, the canonical halo-exchange step. ProcNull neighbours are
// skipped (the corresponding recv buffer is left untouched).
func (c *CartComm) SendrecvShift(dim, disp int, sendUp, recvDown, sendDown, recvUp []byte, tag int) error {
	src, dst, err := c.Shift(dim, disp)
	if err != nil {
		return err
	}
	// Exchange "up" (toward dst) then "down" (toward src).
	if err := c.halfExchange(dst, src, sendUp, recvDown, tag); err != nil {
		return err
	}
	return c.halfExchange(src, dst, sendDown, recvUp, tag+1)
}

func (c *CartComm) halfExchange(to, from int, sendBuf, recvBuf []byte, tag int) error {
	var rreq, sreq Request
	if from != ProcNull {
		rreq = c.Irecv(recvBuf, from, tag)
	}
	if to != ProcNull {
		sreq = c.Isend(sendBuf, to, tag)
	}
	return WaitAll(sreq, rreq)
}
