package mpi_test

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gompi/internal/core"
	"gompi/internal/simnet"
	"gompi/internal/topo"
	"gompi/mpi"
	"gompi/runtime"
)

// TestChaosPeerDeathMidCollective: a rank dies while the others sit inside
// Allreduce. The survivors must come back with MPI_ERR_PROC_FAILED — routed
// through the communicator's error handler — rather than hanging, and the
// poisoned communicator must keep failing fast on later collectives.
func TestChaosPeerDeathMidCollective(t *testing.T) {
	job, err := runtime.NewJob(runtime.Options{
		Cluster: topo.New(topo.Loopback(2), 2),
		PPN:     2,
		Config:  core.Config{CIDMode: core.CIDExtended},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer job.Shutdown()

	var unblocked sync.WaitGroup
	unblocked.Add(3)
	err = job.Launch(func(p *mpi.Process) error {
		sess, err := p.SessionInit(nil, mpi.ErrorsReturn())
		if err != nil {
			return err
		}
		grp, err := sess.GroupFromPset(mpi.PsetWorld)
		if err != nil {
			return err
		}
		var handled atomic.Int32
		errh := mpi.ErrhandlerCreate("capture", func(error) { handled.Add(1) })
		comm, err := sess.CommCreateFromGroup(grp, "chaos", nil, errh)
		if err != nil {
			return err
		}
		if p.JobRank() == 3 {
			// Give the survivors time to block inside the collective, then
			// crash without any cleanup — a dying process doesn't Free or
			// Finalize, and doing so would read as a clean disconnect.
			time.Sleep(30 * time.Millisecond)
			panic("rank 3 dies mid-collective")
		}
		defer unblocked.Done()
		defer func() {
			_ = comm.Free()
			_ = sess.Finalize()
		}()

		_, err = comm.AllreduceInt64(int64(p.JobRank()), mpi.OpSum)
		if err == nil {
			return fmt.Errorf("rank %d: allreduce over a dead peer succeeded", p.JobRank())
		}
		if cls := mpi.ErrorClassOf(err); cls != mpi.ErrClassProcFailed {
			return fmt.Errorf("rank %d: allreduce class = %v (%v), want MPI_ERR_PROC_FAILED", p.JobRank(), cls, err)
		}
		// The next collective must not hang either: the channel stays
		// poisoned for as long as the dead rank is a member.
		if err := comm.Barrier(); mpi.ErrorClassOf(err) != mpi.ErrClassProcFailed {
			return fmt.Errorf("rank %d: barrier after failure = %v, want MPI_ERR_PROC_FAILED", p.JobRank(), err)
		}
		if handled.Load() < 2 {
			return fmt.Errorf("rank %d: errhandler invoked %d times, want >=2", p.JobRank(), handled.Load())
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected the injected rank death to be reported by Launch")
	}
	unblocked.Wait()
}

// TestChaosAllreduceUnderDataFaults: end-to-end correctness with the fabric
// duplicating, reordering and delaying data-plane packets — including the
// very first messages on each exCID channel, whose handshake is the fragile
// part. Results must stay exact; the PML's sequence screening should show it
// actually absorbed injected duplicates.
func TestChaosAllreduceUnderDataFaults(t *testing.T) {
	job, err := runtime.NewJob(runtime.Options{
		Cluster: topo.New(topo.Loopback(2), 2),
		PPN:     2,
		Config:  core.Config{CIDMode: core.CIDExtended},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer job.Shutdown()

	// Installed before launch so even startup traffic runs through it. No
	// Drop here: the data plane recovers duplicated/reordered/late packets,
	// but a dropped eager payload is a genuine loss.
	job.Fabric().SetFaultPlan(&simnet.FaultPlan{
		Seed:    1234,
		Classes: simnet.FaultData,
		Dup:     0.2,
		Reorder: 0.15, ReorderBy: time.Millisecond,
		Delay: 0.2, DelayBy: 200 * time.Microsecond,
	})
	defer job.Fabric().SetFaultPlan(nil)

	const rounds = 10
	var screened atomic.Uint64
	err = job.Launch(func(p *mpi.Process) error {
		if err := p.Init(); err != nil {
			return err
		}
		defer p.Finalize()
		world := p.CommWorld()
		np := int64(world.Size())
		for round := 1; round <= rounds; round++ {
			got, err := world.AllreduceInt64(int64(world.Rank()+1)*int64(round), mpi.OpSum)
			if err != nil {
				return fmt.Errorf("rank %d round %d: %w", world.Rank(), round, err)
			}
			want := np * (np + 1) / 2 * int64(round)
			if got != want {
				return fmt.Errorf("rank %d round %d: allreduce = %d, want %d", world.Rank(), round, got, want)
			}
			if err := world.Barrier(); err != nil {
				return fmt.Errorf("rank %d round %d barrier: %w", world.Rank(), round, err)
			}
		}
		s := p.PMLStatsSnapshot()
		screened.Add(s.DupsDropped + s.ReorderStashed)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if s := job.Fabric().FaultStats(); s.Duplicated == 0 {
		t.Fatalf("fault plan never injected a duplicate: %+v", s)
	}
	if screened.Load() == 0 {
		t.Fatal("no rank screened a duplicated or reordered packet")
	}
}

// TestChaosSurvivorRebuildAfterDeath: the recovery tentpole at the mpi
// layer. A rank dies mid-collective; the survivors observe
// MPI_ERR_PROC_FAILED, resolve the dynamic gompi://alive pset — which
// already reflects the death, because the notification that completed their
// collective also updated the local terminated set — and rebuild a working
// communicator over the survivor group in normal collective time, not
// retry-budget time.
func TestChaosSurvivorRebuildAfterDeath(t *testing.T) {
	job, err := runtime.NewJob(runtime.Options{
		Cluster: topo.New(topo.Loopback(2), 2),
		PPN:     2,
		Config:  core.Config{CIDMode: core.CIDExtended},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer job.Shutdown()

	var unblocked sync.WaitGroup
	unblocked.Add(3)
	err = job.Launch(func(p *mpi.Process) error {
		sess, err := p.SessionInit(nil, mpi.ErrorsReturn())
		if err != nil {
			return err
		}
		grp, err := sess.GroupFromPset(mpi.PsetWorld)
		if err != nil {
			return err
		}
		comm, err := sess.CommCreateFromGroup(grp, "pre-fault", nil, mpi.ErrorsReturn())
		if err != nil {
			return err
		}
		if p.JobRank() == 3 {
			time.Sleep(30 * time.Millisecond)
			panic("rank 3 dies mid-collective")
		}
		defer unblocked.Done()
		defer func() { _ = sess.Finalize() }()

		_, err = comm.AllreduceInt64(int64(p.JobRank()), mpi.OpSum)
		if cls := mpi.ErrorClassOf(err); cls != mpi.ErrClassProcFailed {
			return fmt.Errorf("rank %d: allreduce = %v (class %v), want MPI_ERR_PROC_FAILED", p.JobRank(), err, cls)
		}
		if err := comm.Free(); err != nil {
			return fmt.Errorf("rank %d: free poisoned comm: %v", p.JobRank(), err)
		}

		if !sess.PsetIsDynamic(mpi.PsetAlive) || sess.PsetIsDynamic(mpi.PsetWorld) {
			return fmt.Errorf("rank %d: PsetIsDynamic misclassifies", p.JobRank())
		}
		info, err := sess.PsetInfo(mpi.PsetAlive)
		if err != nil {
			return err
		}
		if v, _ := info.Get("mpi_size"); v != "3" {
			return fmt.Errorf("rank %d: alive mpi_size = %q, want 3", p.JobRank(), v)
		}
		if v, _ := info.Get("mpi_num_failed"); v != "1" {
			return fmt.Errorf("rank %d: mpi_num_failed = %q, want 1", p.JobRank(), v)
		}

		sg, err := sess.SurvivorGroup(mpi.PsetAlive)
		if err != nil {
			return err
		}
		if sg.Size() != 3 {
			return fmt.Errorf("rank %d: survivor group size %d, want 3", p.JobRank(), sg.Size())
		}
		start := time.Now()
		comm2, err := sess.CommCreateFromGroup(sg, "rebuild", nil, mpi.ErrorsReturn())
		if err != nil {
			return fmt.Errorf("rank %d: rebuild over survivors: %v", p.JobRank(), err)
		}
		if d := time.Since(start); d > 5*time.Second {
			return fmt.Errorf("rank %d: survivor construct took %v — retry-budget stall", p.JobRank(), d)
		}
		defer func() { _ = comm2.Free() }()
		sum, err := comm2.AllreduceInt64(int64(p.JobRank()), mpi.OpSum)
		if err != nil {
			return fmt.Errorf("rank %d: allreduce on rebuilt comm: %v", p.JobRank(), err)
		}
		if sum != 3 { // 0+1+2
			return fmt.Errorf("rank %d: rebuilt allreduce = %d, want 3", p.JobRank(), sum)
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected the injected rank death to be reported by Launch")
	}
	unblocked.Wait()
}

// TestChaosStaleSurvivorGroupFailsFast: regression for the one-shot
// SurvivorGroup snapshot race. A group snapshot taken before a death must be
// rejected by CommCreateFromGroup immediately — classified
// MPI_ERR_PROC_FAILED — instead of burning the construct's full retry
// budget timing out against the dead member. Also the zero-survivor case:
// SurvivorGroup over a pset whose members are all dead returns a classified
// process-failure error, not a bare one.
func TestChaosStaleSurvivorGroupFailsFast(t *testing.T) {
	job, err := runtime.NewJob(runtime.Options{
		Cluster: topo.New(topo.Loopback(2), 2),
		PPN:     2,
		Config:  core.Config{CIDMode: core.CIDExtended},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer job.Shutdown()

	var unblocked sync.WaitGroup
	unblocked.Add(2)
	err = job.Launch(func(p *mpi.Process) error {
		sess, err := p.SessionInit(nil, mpi.ErrorsReturn())
		if err != nil {
			return err
		}
		world, err := sess.GroupFromPset(mpi.PsetWorld)
		if err != nil {
			return err
		}
		syncComm, err := sess.CommCreateFromGroup(world, "stale-sync", nil, mpi.ErrorsReturn())
		if err != nil {
			return err
		}

		// Ranks 2 and 3 register the pset that will lose every member.
		if p.JobRank() >= 2 {
			doomed, err := world.Incl([]int{2, 3})
			if err != nil {
				return err
			}
			if err := sess.CreatePset("doomed", doomed); err != nil {
				return err
			}
		}

		// Survivors subscribe to the dynamic pset before any death.
		deaths := make(chan mpi.PsetChange, 8)
		watch := 0
		if p.JobRank() < 2 {
			watch, err = sess.WatchPset(mpi.PsetAlive, func(c mpi.PsetChange) { deaths <- c })
			if err != nil {
				return err
			}
		}
		if err := syncComm.Barrier(); err != nil {
			return err
		}

		// Snapshot while everyone is still alive: this is the stale group.
		stale, err := sess.SurvivorGroup(mpi.PsetWorld)
		if err != nil {
			return err
		}
		if stale.Size() != 4 {
			return fmt.Errorf("rank %d: pre-death survivor group size %d, want 4", p.JobRank(), stale.Size())
		}

		if p.JobRank() >= 2 {
			time.Sleep(30 * time.Millisecond)
			panic(fmt.Sprintf("rank %d dies", p.JobRank()))
		}
		defer unblocked.Done()
		defer func() { _ = sess.Finalize() }()
		defer func() { _ = syncComm.Free() }()

		// Wait until BOTH deaths are visible locally.
		dead := map[int]bool{}
		for len(dead) < 2 {
			select {
			case c := <-deaths:
				if !c.Alive {
					dead[c.Rank] = true
				}
			case <-time.After(10 * time.Second):
				return fmt.Errorf("rank %d: death notifications never arrived", p.JobRank())
			}
		}
		sess.UnwatchPset(watch)

		start := time.Now()
		_, err = sess.CommCreateFromGroup(stale, "stale-rebuild", nil, mpi.ErrorsReturn())
		if cls := mpi.ErrorClassOf(err); cls != mpi.ErrClassProcFailed {
			return fmt.Errorf("rank %d: stale construct = %v (class %v), want MPI_ERR_PROC_FAILED", p.JobRank(), err, cls)
		}
		if d := time.Since(start); d > 2*time.Second {
			return fmt.Errorf("rank %d: stale construct took %v, want immediate failure", p.JobRank(), d)
		}

		// Zero survivors: classified, not a bare error.
		_, err = sess.SurvivorGroup("doomed")
		if cls := mpi.ErrorClassOf(err); cls != mpi.ErrClassProcFailed {
			return fmt.Errorf("rank %d: zero-survivor group = %v (class %v), want MPI_ERR_PROC_FAILED", p.JobRank(), err, cls)
		}

		// A fresh survivor set still rebuilds and computes.
		sg, err := sess.SurvivorGroup(mpi.PsetAlive)
		if err != nil {
			return err
		}
		if sg.Size() != 2 {
			return fmt.Errorf("rank %d: survivor group size %d, want 2", p.JobRank(), sg.Size())
		}
		c2, err := sess.CommCreateFromGroup(sg, "fresh-rebuild", nil, mpi.ErrorsReturn())
		if err != nil {
			return err
		}
		defer func() { _ = c2.Free() }()
		sum, err := c2.AllreduceInt64(int64(p.JobRank()), mpi.OpSum)
		if err != nil || sum != 1 { // 0+1
			return fmt.Errorf("rank %d: rebuilt allreduce = %d, %v; want 1", p.JobRank(), sum, err)
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected the injected rank deaths to be reported by Launch")
	}
	unblocked.Wait()
}

// TestChaosPeerDeathMidPersistentColl: a rank dies while the others are
// inside Start/Wait of a persistent allreduce. The survivors' Wait must
// surface MPI_ERR_PROC_FAILED instead of hanging, and the errored request
// must be restartable (failing fast again) and then cleanly freeable.
func TestChaosPeerDeathMidPersistentColl(t *testing.T) {
	job, err := runtime.NewJob(runtime.Options{
		Cluster: topo.New(topo.Loopback(2), 2),
		PPN:     2,
		Config:  core.Config{CIDMode: core.CIDExtended},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer job.Shutdown()

	var unblocked sync.WaitGroup
	unblocked.Add(3)
	err = job.Launch(func(p *mpi.Process) error {
		sess, err := p.SessionInit(nil, mpi.ErrorsReturn())
		if err != nil {
			return err
		}
		grp, err := sess.GroupFromPset(mpi.PsetWorld)
		if err != nil {
			return err
		}
		comm, err := sess.CommCreateFromGroup(grp, "chaos-pcoll", nil, mpi.ErrorsReturn())
		if err != nil {
			return err
		}
		const count = 256
		send := make([]byte, count*8)
		recv := make([]byte, count*8)
		req, err := comm.AllreduceInit(send, recv, count, mpi.Int64, mpi.OpSum)
		if err != nil {
			return err
		}
		// One clean round proves the request works before the fault.
		if err := req.Start(); err != nil {
			return err
		}
		if err := req.Wait(); err != nil {
			return err
		}

		if p.JobRank() == 3 {
			// Die between rounds, while the survivors are already blocked
			// inside the next Start/Wait.
			time.Sleep(30 * time.Millisecond)
			panic("rank 3 dies mid persistent collective")
		}
		defer unblocked.Done()
		defer func() {
			_ = comm.Free()
			_ = sess.Finalize()
		}()

		if err := req.Start(); err != nil {
			return err
		}
		err = req.Wait()
		if err == nil {
			return fmt.Errorf("rank %d: persistent allreduce over a dead peer succeeded", p.JobRank())
		}
		if cls := mpi.ErrorClassOf(err); cls != mpi.ErrClassProcFailed {
			return fmt.Errorf("rank %d: Wait class = %v (%v), want MPI_ERR_PROC_FAILED", p.JobRank(), cls, err)
		}
		// The errored request is back in the inactive state: restarting it
		// must fail fast (poisoned channel), not hang, and Free must work.
		if err := req.Start(); err != nil {
			return err
		}
		if err := req.Wait(); mpi.ErrorClassOf(err) != mpi.ErrClassProcFailed {
			return fmt.Errorf("rank %d: restarted Wait = %v, want MPI_ERR_PROC_FAILED", p.JobRank(), err)
		}
		if err := req.Free(); err != nil {
			return fmt.Errorf("rank %d: Free after failure: %v", p.JobRank(), err)
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected the injected rank death to be reported by Launch")
	}
	unblocked.Wait()
}
