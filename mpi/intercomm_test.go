package mpi_test

import (
	"fmt"
	"testing"

	"gompi/mpi"
)

// interSetup builds the two disjoint groups (even/odd job ranks) and the
// intercommunicator between them, from each side's perspective.
func interSetup(p *mpi.Process, sess *mpi.Session, tag string) (*mpi.InterComm, error) {
	world, err := sess.GroupFromPset(mpi.PsetWorld)
	if err != nil {
		return nil, err
	}
	var evens, odds []int
	for i := 0; i < world.Size(); i++ {
		if i%2 == 0 {
			evens = append(evens, i)
		} else {
			odds = append(odds, i)
		}
	}
	eg, err := world.Incl(evens)
	if err != nil {
		return nil, err
	}
	og, err := world.Incl(odds)
	if err != nil {
		return nil, err
	}
	if p.JobRank()%2 == 0 {
		return sess.InterCommCreateFromGroups(eg, og, tag, nil)
	}
	return sess.InterCommCreateFromGroups(og, eg, tag, nil)
}

func TestInterCommCreateAndShape(t *testing.T) {
	run(t, 2, 2, exCfg(), func(p *mpi.Process) error {
		sess, err := p.SessionInit(nil, nil)
		if err != nil {
			return err
		}
		defer sess.Finalize()
		ic, err := interSetup(p, sess, "shape")
		if err != nil {
			return err
		}
		defer ic.Free()
		if ic.Size() != 2 || ic.RemoteSize() != 2 {
			return fmt.Errorf("sizes = %d/%d", ic.Size(), ic.RemoteSize())
		}
		wantLocal := p.JobRank() / 2
		if ic.Rank() != wantLocal {
			return fmt.Errorf("rank = %d, want %d", ic.Rank(), wantLocal)
		}
		lg := ic.LocalGroup().GlobalRanks()
		rg := ic.RemoteGroup().GlobalRanks()
		if p.JobRank()%2 == 0 {
			if lg[0] != 0 || rg[0] != 1 {
				return fmt.Errorf("groups = %v / %v", lg, rg)
			}
		} else {
			if lg[0] != 1 || rg[0] != 0 {
				return fmt.Errorf("groups = %v / %v", lg, rg)
			}
		}
		return ic.Barrier()
	})
}

func TestInterCommPingPong(t *testing.T) {
	run(t, 2, 2, exCfg(), func(p *mpi.Process) error {
		sess, err := p.SessionInit(nil, nil)
		if err != nil {
			return err
		}
		defer sess.Finalize()
		ic, err := interSetup(p, sess, "pp")
		if err != nil {
			return err
		}
		defer ic.Free()
		me := ic.Rank()
		buf := make([]byte, 2)
		if p.JobRank()%2 == 0 {
			// Evens send to their same-index odd partner.
			if err := ic.Send([]byte{byte(me), 7}, me, 3); err != nil {
				return err
			}
			st, err := ic.Recv(buf, me, 4)
			if err != nil {
				return err
			}
			if st.Source != me || buf[0] != byte(me) || buf[1] != 8 {
				return fmt.Errorf("pong st=%+v buf=%v", st, buf)
			}
		} else {
			st, err := ic.Recv(buf, mpi.AnySource, 3)
			if err != nil {
				return err
			}
			if st.Source != me {
				return fmt.Errorf("ping from remote rank %d, want %d", st.Source, me)
			}
			buf[1]++
			if err := mpi.WaitAll(ic.Isend(buf, st.Source, 4)); err != nil {
				return err
			}
		}
		return nil
	})
}

func TestInterCommBcastBothDirections(t *testing.T) {
	run(t, 1, 4, exCfg(), func(p *mpi.Process) error {
		sess, err := p.SessionInit(nil, nil)
		if err != nil {
			return err
		}
		defer sess.Finalize()
		ic, err := interSetup(p, sess, "bcast")
		if err != nil {
			return err
		}
		defer ic.Free()
		even := p.JobRank()%2 == 0

		// Round 1: even group's rank 1 broadcasts to the odd group.
		buf := []byte{0, 0}
		if even {
			if ic.Rank() == 1 {
				buf = []byte{42, 43}
			}
			if err := ic.Bcast(buf, 1, true); err != nil {
				return err
			}
		} else {
			if err := ic.Bcast(buf, 1, false); err != nil {
				return err
			}
			if buf[0] != 42 || buf[1] != 43 {
				return fmt.Errorf("odd side got %v", buf)
			}
		}
		// Round 2: odd group's rank 0 broadcasts to the even group.
		buf2 := []byte{0}
		if even {
			if err := ic.Bcast(buf2, 0, false); err != nil {
				return err
			}
			if buf2[0] != 99 {
				return fmt.Errorf("even side got %v", buf2)
			}
		} else {
			if ic.Rank() == 0 {
				buf2[0] = 99
			}
			if err := ic.Bcast(buf2, 0, true); err != nil {
				return err
			}
		}
		return nil
	})
}

func TestInterCommMerge(t *testing.T) {
	run(t, 2, 2, exCfg(), func(p *mpi.Process) error {
		sess, err := p.SessionInit(nil, nil)
		if err != nil {
			return err
		}
		defer sess.Finalize()
		ic, err := interSetup(p, sess, "merge")
		if err != nil {
			return err
		}
		defer ic.Free()
		// Evens low, odds high: merged order = evens then odds.
		merged, err := ic.Merge(p.JobRank()%2 == 1)
		if err != nil {
			return err
		}
		defer merged.Free()
		if merged.Size() != 4 {
			return fmt.Errorf("merged size = %d", merged.Size())
		}
		wantRank := p.JobRank() / 2
		if p.JobRank()%2 == 1 {
			wantRank += 2
		}
		if merged.Rank() != wantRank {
			return fmt.Errorf("merged rank = %d, want %d", merged.Rank(), wantRank)
		}
		sum, err := merged.AllreduceInt64(int64(p.JobRank()), mpi.OpSum)
		if err != nil {
			return err
		}
		if sum != 6 {
			return fmt.Errorf("merged sum = %d", sum)
		}
		return nil
	})
}

func TestInterCommValidation(t *testing.T) {
	run(t, 1, 4, exCfg(), func(p *mpi.Process) error {
		sess, err := p.SessionInit(nil, nil)
		if err != nil {
			return err
		}
		defer sess.Finalize()
		world, err := sess.GroupFromPset(mpi.PsetWorld)
		if err != nil {
			return err
		}
		// Overlapping groups must be rejected (local check, no collective).
		half, err := world.Incl([]int{0, 1, 2})
		if err != nil {
			return err
		}
		if _, err := sess.InterCommCreateFromGroups(world, half, "bad", nil); err == nil {
			return fmt.Errorf("overlapping groups accepted")
		}
		// Caller must be in the local group.
		notMe, err := world.Excl([]int{world.Rank()})
		if err != nil {
			return err
		}
		me, err := world.Incl([]int{world.Rank()})
		if err != nil {
			return err
		}
		_ = me
		if _, err := sess.InterCommCreateFromGroups(notMe, me, "bad2", nil); err == nil {
			return fmt.Errorf("non-member local group accepted")
		}
		return nil
	})
}
