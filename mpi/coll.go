package mpi

import (
	"fmt"
)

// Collective operations. All collectives are implemented over the PML with
// internal (negative) tags sequenced per communicator, so back-to-back
// collectives and overlapping point-to-point traffic cannot cross-match.
//
// Algorithm selection is delegated to the internal/coll framework: the
// component chain chosen through core.Config.Coll (hier/tuned/basic by
// default) picks a shape per call from (communicator size, message size,
// placement), overridable per communicator with gompi_coll_* Info hints.
// This file validates arguments, claims the collective tag window, and
// dispatches; the shapes themselves live in internal/coll.

// Barrier blocks until every member has entered (MPI_Barrier).
func (c *Comm) Barrier() error {
	if err := c.checkLive(); err != nil {
		return c.errh.invoke(err)
	}
	tag := c.nextCollTag()
	return c.errh.invoke(c.barrierWithTag(tag))
}

// Ibarrier starts a nonblocking barrier (MPI_Ibarrier). The returned
// request completes once every member has entered. The QUO quiescence
// pattern polls it with Test while sleeping (paper §IV-E). It dispatches
// through the same framework as Barrier, so both paths always agree on
// the algorithm.
func (c *Comm) Ibarrier() (Request, error) {
	if err := c.checkLive(); err != nil {
		return nil, c.errh.invoke(err)
	}
	tag := c.nextCollTag()
	return startGoRequest(func() error { return c.barrierWithTag(tag) }), nil
}

func (c *Comm) barrierWithTag(tag int) error {
	m, err := c.collModule()
	if err != nil {
		return err
	}
	return m.Barrier(tag)
}

// Bcast broadcasts buf from root to every member (MPI_Bcast).
func (c *Comm) Bcast(buf []byte, root int) error {
	if err := c.checkLive(); err != nil {
		return c.errh.invoke(err)
	}
	if root < 0 || root >= c.Size() {
		return c.errh.invoke(fmt.Errorf("mpi: bcast root %d out of range", root))
	}
	tag := c.nextCollTag()
	return c.errh.invoke(c.bcastWithTag(buf, root, tag))
}

func (c *Comm) bcastWithTag(buf []byte, root, tag int) error {
	m, err := c.collModule()
	if err != nil {
		return err
	}
	return m.Bcast(buf, root, tag)
}

// Reduce combines count elements of datatype dt from every member with op,
// leaving the result in recvBuf at root (MPI_Reduce). recvBuf is ignored at
// non-root members (may be nil).
func (c *Comm) Reduce(sendBuf, recvBuf []byte, count int, dt Datatype, op Op, root int) error {
	if err := c.checkLive(); err != nil {
		return c.errh.invoke(err)
	}
	if root < 0 || root >= c.Size() {
		return c.errh.invoke(fmt.Errorf("mpi: reduce root %d out of range", root))
	}
	nbytes := count * dt.Size()
	if len(sendBuf) < nbytes {
		return c.errh.invoke(fmt.Errorf("mpi: reduce send buffer %d < %d bytes", len(sendBuf), nbytes))
	}
	tag := c.nextCollTag()
	return c.errh.invoke(c.reduceWithTag(sendBuf, recvBuf, count, dt, op, root, tag))
}

func (c *Comm) reduceWithTag(sendBuf, recvBuf []byte, count int, dt Datatype, op Op, root, tag int) error {
	nbytes := count * dt.Size()
	if c.Rank() == root && len(recvBuf) < nbytes {
		return fmt.Errorf("mpi: reduce recv buffer %d < %d bytes", len(recvBuf), nbytes)
	}
	m, err := c.collModule()
	if err != nil {
		return err
	}
	// Builtin operations are all commutative; the framework may reorder.
	return m.Reduce(sendBuf, recvBuf, count, dt.Size(), builtinReducer(op, dt), true, root, tag)
}

// Allreduce combines like Reduce but leaves the result at every member
// (MPI_Allreduce). The framework picks recursive doubling for small
// payloads, a bandwidth-optimal ring for large ones, and the node-leader
// hierarchy on multi-node communicators.
func (c *Comm) Allreduce(sendBuf, recvBuf []byte, count int, dt Datatype, op Op) error {
	if err := c.checkLive(); err != nil {
		return c.errh.invoke(err)
	}
	nbytes := count * dt.Size()
	if len(sendBuf) < nbytes {
		return c.errh.invoke(fmt.Errorf("mpi: allreduce send buffer %d < %d bytes", len(sendBuf), nbytes))
	}
	if len(recvBuf) < nbytes {
		return c.errh.invoke(fmt.Errorf("mpi: allreduce recv buffer %d < %d bytes", len(recvBuf), nbytes))
	}
	m, err := c.collModule()
	if err != nil {
		return c.errh.invoke(err)
	}
	tag := c.nextCollTag()
	return c.errh.invoke(m.Allreduce(sendBuf, recvBuf, count, dt.Size(), builtinReducer(op, dt), true, tag))
}

// Allgather concatenates each member's sendBuf into recvBuf at every member
// (MPI_Allgather). Every member must pass equal-sized sendBuf; recvBuf must
// hold size*len(sendBuf) bytes.
func (c *Comm) Allgather(sendBuf, recvBuf []byte) error {
	if err := c.checkLive(); err != nil {
		return c.errh.invoke(err)
	}
	size := c.Size()
	blk := len(sendBuf)
	if len(recvBuf) < size*blk {
		return c.errh.invoke(fmt.Errorf("mpi: allgather recv buffer %d < %d bytes", len(recvBuf), size*blk))
	}
	m, err := c.collModule()
	if err != nil {
		return c.errh.invoke(err)
	}
	tag := c.nextCollTag()
	return c.errh.invoke(m.Allgather(sendBuf, recvBuf[:size*blk], tag))
}

// Gather concentrates each member's sendBuf at root (MPI_Gather). recvBuf
// must hold size*len(sendBuf) bytes at root; it is ignored elsewhere.
// Rooted linear collectives with per-rank buffers stay outside the
// framework (the decision tables have a single shape for them).
func (c *Comm) Gather(sendBuf, recvBuf []byte, root int) error {
	if err := c.checkLive(); err != nil {
		return c.errh.invoke(err)
	}
	rank, size := c.Rank(), c.Size()
	blk := len(sendBuf)
	tag := c.nextCollTag()
	if rank != root {
		return c.errh.invoke(c.sendT(sendBuf, root, tag))
	}
	if len(recvBuf) < size*blk {
		return c.errh.invoke(fmt.Errorf("mpi: gather recv buffer %d < %d bytes", len(recvBuf), size*blk))
	}
	copy(recvBuf[rank*blk:], sendBuf)
	for r := 0; r < size; r++ {
		if r == root {
			continue
		}
		if err := c.recvT(recvBuf[r*blk:r*blk+blk], r, tag); err != nil {
			return c.errh.invoke(err)
		}
	}
	return nil
}

// Scatter distributes size equal blocks of sendBuf from root (MPI_Scatter).
// sendBuf is ignored at non-roots.
func (c *Comm) Scatter(sendBuf, recvBuf []byte, root int) error {
	if err := c.checkLive(); err != nil {
		return c.errh.invoke(err)
	}
	rank, size := c.Rank(), c.Size()
	blk := len(recvBuf)
	tag := c.nextCollTag()
	if rank != root {
		return c.errh.invoke(c.recvT(recvBuf, root, tag))
	}
	if len(sendBuf) < size*blk {
		return c.errh.invoke(fmt.Errorf("mpi: scatter send buffer %d < %d bytes", len(sendBuf), size*blk))
	}
	for r := 0; r < size; r++ {
		if r == root {
			continue
		}
		if err := c.sendT(sendBuf[r*blk:r*blk+blk], r, tag); err != nil {
			return c.errh.invoke(err)
		}
	}
	copy(recvBuf, sendBuf[rank*blk:rank*blk+blk])
	return nil
}

// Alltoall exchanges the i-th block of sendBuf with member i
// (MPI_Alltoall). Both buffers hold size equal blocks of
// len(sendBuf)/size bytes.
func (c *Comm) Alltoall(sendBuf, recvBuf []byte) error {
	if err := c.checkLive(); err != nil {
		return c.errh.invoke(err)
	}
	size := c.Size()
	if len(sendBuf)%size != 0 {
		return c.errh.invoke(fmt.Errorf("mpi: alltoall send buffer %d not divisible by %d", len(sendBuf), size))
	}
	blk := len(sendBuf) / size
	if len(recvBuf) < size*blk {
		return c.errh.invoke(fmt.Errorf("mpi: alltoall recv buffer %d < %d bytes", len(recvBuf), size*blk))
	}
	m, err := c.collModule()
	if err != nil {
		return c.errh.invoke(err)
	}
	tag := c.nextCollTag()
	return c.errh.invoke(m.Alltoall(sendBuf, recvBuf[:size*blk], tag))
}

// Typed convenience collectives used throughout the benchmarks and
// example applications.

// AllreduceFloat64 reduces a single float64 across the communicator.
func (c *Comm) AllreduceFloat64(v float64, op Op) (float64, error) {
	in := PackFloat64s([]float64{v})
	out := make([]byte, 8)
	if err := c.Allreduce(in, out, 1, Float64, op); err != nil {
		return 0, err
	}
	return UnpackFloat64s(out)[0], nil
}

// AllreduceInt64 reduces a single int64 across the communicator.
func (c *Comm) AllreduceInt64(v int64, op Op) (int64, error) {
	in := PackInt64s([]int64{v})
	out := make([]byte, 8)
	if err := c.Allreduce(in, out, 1, Int64, op); err != nil {
		return 0, err
	}
	return UnpackInt64s(out)[0], nil
}
