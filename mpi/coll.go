package mpi

import (
	"fmt"
)

// Collective operations. All collectives are implemented over the PML with
// internal (negative) tags sequenced per communicator, so back-to-back
// collectives and overlapping point-to-point traffic cannot cross-match.
//
// Tree shapes follow Open MPI's defaults for small and medium
// communicators: binomial trees for barrier/bcast/reduce, a ring for
// allgather, and pairwise exchange for alltoall.

// Barrier blocks until every member has entered (MPI_Barrier): a binomial
// fan-in to rank 0 followed by a binomial fan-out.
func (c *Comm) Barrier() error {
	if err := c.checkLive(); err != nil {
		return c.errh.invoke(err)
	}
	tag := c.nextCollTag()
	return c.errh.invoke(c.barrierWithTag(tag))
}

// Ibarrier starts a nonblocking barrier (MPI_Ibarrier). The returned
// request completes once every member has entered. The QUO quiescence
// pattern polls it with Test while sleeping (paper §IV-E).
func (c *Comm) Ibarrier() (Request, error) {
	if err := c.checkLive(); err != nil {
		return nil, c.errh.invoke(err)
	}
	tag := c.nextCollTag()
	return startGoRequest(func() error { return c.barrierWithTag(tag) }), nil
}

func (c *Comm) barrierWithTag(tag int) error {
	rank, size := c.Rank(), c.Size()
	if size == 1 {
		return nil
	}
	var token [1]byte
	// Fan-in to rank 0.
	mask := 1
	for mask < size {
		if rank&mask != 0 {
			if err := c.sendT(token[:], rank-mask, tag); err != nil {
				return err
			}
			break
		}
		if peer := rank + mask; peer < size {
			if err := c.recvT(token[:], peer, tag); err != nil {
				return err
			}
		}
		mask <<= 1
	}
	// Fan-out from rank 0.
	mask = 1
	for mask < size {
		if rank&mask != 0 {
			if err := c.recvT(token[:], rank-mask, tag); err != nil {
				return err
			}
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if peer := rank + mask; peer < size && rank&(mask-1) == 0 && rank&mask == 0 {
			if err := c.sendT(token[:], peer, tag); err != nil {
				return err
			}
		}
		mask >>= 1
	}
	return nil
}

// Bcast broadcasts buf from root to every member (MPI_Bcast) along a
// binomial tree.
func (c *Comm) Bcast(buf []byte, root int) error {
	if err := c.checkLive(); err != nil {
		return c.errh.invoke(err)
	}
	if root < 0 || root >= c.Size() {
		return c.errh.invoke(fmt.Errorf("mpi: bcast root %d out of range", root))
	}
	tag := c.nextCollTag()
	return c.errh.invoke(c.bcastWithTag(buf, root, tag))
}

func (c *Comm) bcastWithTag(buf []byte, root, tag int) error {
	rank, size := c.Rank(), c.Size()
	if size == 1 {
		return nil
	}
	vrank := (rank - root + size) % size
	toReal := func(v int) int { return (v + root) % size }

	mask := 1
	for mask < size {
		if vrank&mask != 0 {
			if err := c.recvT(buf, toReal(vrank-mask), tag); err != nil {
				return err
			}
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if peer := vrank + mask; peer < size && vrank&(mask-1) == 0 && vrank&mask == 0 {
			if err := c.sendT(buf, toReal(peer), tag); err != nil {
				return err
			}
		}
		mask >>= 1
	}
	return nil
}

// Reduce combines count elements of datatype dt from every member with op,
// leaving the result in recvBuf at root (MPI_Reduce). recvBuf is ignored at
// non-root members (may be nil).
func (c *Comm) Reduce(sendBuf, recvBuf []byte, count int, dt Datatype, op Op, root int) error {
	if err := c.checkLive(); err != nil {
		return c.errh.invoke(err)
	}
	if root < 0 || root >= c.Size() {
		return c.errh.invoke(fmt.Errorf("mpi: reduce root %d out of range", root))
	}
	nbytes := count * dt.Size()
	if len(sendBuf) < nbytes {
		return c.errh.invoke(fmt.Errorf("mpi: reduce send buffer %d < %d bytes", len(sendBuf), nbytes))
	}
	tag := c.nextCollTag()
	return c.errh.invoke(c.reduceWithTag(sendBuf, recvBuf, count, dt, op, root, tag))
}

func (c *Comm) reduceWithTag(sendBuf, recvBuf []byte, count int, dt Datatype, op Op, root, tag int) error {
	rank, size := c.Rank(), c.Size()
	nbytes := count * dt.Size()
	acc := make([]byte, nbytes)
	copy(acc, sendBuf[:nbytes])
	if size > 1 {
		vrank := (rank - root + size) % size
		toReal := func(v int) int { return (v + root) % size }
		tmp := make([]byte, nbytes)
		mask := 1
		for mask < size {
			if vrank&mask != 0 {
				if err := c.sendT(acc, toReal(vrank-mask), tag); err != nil {
					return err
				}
				break
			}
			if peer := vrank + mask; peer < size {
				if err := c.recvT(tmp, toReal(peer), tag); err != nil {
					return err
				}
				if err := reduce(op, dt, acc, tmp, count); err != nil {
					return err
				}
			}
			mask <<= 1
		}
	}
	if rank == root {
		if len(recvBuf) < nbytes {
			return fmt.Errorf("mpi: reduce recv buffer %d < %d bytes", len(recvBuf), nbytes)
		}
		copy(recvBuf, acc)
	}
	return nil
}

// Allreduce combines like Reduce but leaves the result at every member
// (MPI_Allreduce). Power-of-two communicators use recursive doubling (the
// "tuned" algorithm: log2(N) rounds, no root bottleneck); other sizes fall
// back to reduce + broadcast ("basic").
func (c *Comm) Allreduce(sendBuf, recvBuf []byte, count int, dt Datatype, op Op) error {
	if err := c.checkLive(); err != nil {
		return c.errh.invoke(err)
	}
	nbytes := count * dt.Size()
	if len(sendBuf) < nbytes {
		return c.errh.invoke(fmt.Errorf("mpi: allreduce send buffer %d < %d bytes", len(sendBuf), nbytes))
	}
	if len(recvBuf) < nbytes {
		return c.errh.invoke(fmt.Errorf("mpi: allreduce recv buffer %d < %d bytes", len(recvBuf), nbytes))
	}
	size := c.Size()
	if size&(size-1) == 0 {
		tag := c.nextCollTag()
		return c.errh.invoke(c.allreduceRD(sendBuf, recvBuf, count, dt, op, tag))
	}
	rtag := c.nextCollTag()
	btag := c.nextCollTag()
	if err := c.reduceWithTag(sendBuf, recvBuf, count, dt, op, 0, rtag); err != nil {
		return c.errh.invoke(err)
	}
	return c.errh.invoke(c.bcastWithTag(recvBuf[:nbytes], 0, btag))
}

// allreduceRD is the recursive-doubling allreduce for power-of-two sizes.
// For non-commutative reproducibility, each round applies the lower-rank
// operand first, so every member computes the same bracketing.
func (c *Comm) allreduceRD(sendBuf, recvBuf []byte, count int, dt Datatype, op Op, tag int) error {
	rank, size := c.Rank(), c.Size()
	nbytes := count * dt.Size()
	copy(recvBuf[:nbytes], sendBuf[:nbytes])
	if size == 1 {
		return nil
	}
	tmp := make([]byte, nbytes)
	for mask := 1; mask < size; mask <<= 1 {
		partner := rank ^ mask
		if err := c.sendrecvT(recvBuf[:nbytes], partner, tmp, partner, tag); err != nil {
			return err
		}
		if partner < rank {
			// acc = op(partner_acc, acc): lower rank on the left.
			if err := reduce(op, dt, tmp, recvBuf[:nbytes], count); err != nil {
				return err
			}
			copy(recvBuf[:nbytes], tmp)
		} else {
			if err := reduce(op, dt, recvBuf[:nbytes], tmp, count); err != nil {
				return err
			}
		}
	}
	return nil
}

// Allgather concatenates each member's sendBuf into recvBuf at every member
// (MPI_Allgather), using a ring. Every member must pass equal-sized
// sendBuf; recvBuf must hold size*len(sendBuf) bytes.
func (c *Comm) Allgather(sendBuf, recvBuf []byte) error {
	if err := c.checkLive(); err != nil {
		return c.errh.invoke(err)
	}
	rank, size := c.Rank(), c.Size()
	blk := len(sendBuf)
	if len(recvBuf) < size*blk {
		return c.errh.invoke(fmt.Errorf("mpi: allgather recv buffer %d < %d bytes", len(recvBuf), size*blk))
	}
	tag := c.nextCollTag()
	copy(recvBuf[rank*blk:], sendBuf)
	if size == 1 {
		return nil
	}
	right := (rank + 1) % size
	left := (rank - 1 + size) % size
	// Step i: forward the block that originated at (rank - i).
	for i := 0; i < size-1; i++ {
		sendBlk := (rank - i + size) % size
		recvBlk := (rank - i - 1 + size) % size
		if err := c.sendrecvT(recvBuf[sendBlk*blk:sendBlk*blk+blk], right,
			recvBuf[recvBlk*blk:recvBlk*blk+blk], left, tag); err != nil {
			return c.errh.invoke(err)
		}
	}
	return nil
}

// Gather concentrates each member's sendBuf at root (MPI_Gather). recvBuf
// must hold size*len(sendBuf) bytes at root; it is ignored elsewhere.
func (c *Comm) Gather(sendBuf, recvBuf []byte, root int) error {
	if err := c.checkLive(); err != nil {
		return c.errh.invoke(err)
	}
	rank, size := c.Rank(), c.Size()
	blk := len(sendBuf)
	tag := c.nextCollTag()
	if rank != root {
		return c.errh.invoke(c.sendT(sendBuf, root, tag))
	}
	if len(recvBuf) < size*blk {
		return c.errh.invoke(fmt.Errorf("mpi: gather recv buffer %d < %d bytes", len(recvBuf), size*blk))
	}
	copy(recvBuf[rank*blk:], sendBuf)
	for r := 0; r < size; r++ {
		if r == root {
			continue
		}
		if err := c.recvT(recvBuf[r*blk:r*blk+blk], r, tag); err != nil {
			return c.errh.invoke(err)
		}
	}
	return nil
}

// Scatter distributes size equal blocks of sendBuf from root (MPI_Scatter).
// sendBuf is ignored at non-roots.
func (c *Comm) Scatter(sendBuf, recvBuf []byte, root int) error {
	if err := c.checkLive(); err != nil {
		return c.errh.invoke(err)
	}
	rank, size := c.Rank(), c.Size()
	blk := len(recvBuf)
	tag := c.nextCollTag()
	if rank != root {
		return c.errh.invoke(c.recvT(recvBuf, root, tag))
	}
	if len(sendBuf) < size*blk {
		return c.errh.invoke(fmt.Errorf("mpi: scatter send buffer %d < %d bytes", len(sendBuf), size*blk))
	}
	for r := 0; r < size; r++ {
		if r == root {
			continue
		}
		if err := c.sendT(sendBuf[r*blk:r*blk+blk], r, tag); err != nil {
			return c.errh.invoke(err)
		}
	}
	copy(recvBuf, sendBuf[rank*blk:rank*blk+blk])
	return nil
}

// Alltoall exchanges the i-th block of sendBuf with member i
// (MPI_Alltoall) using pairwise exchange. Both buffers hold size equal
// blocks of len(sendBuf)/size bytes.
func (c *Comm) Alltoall(sendBuf, recvBuf []byte) error {
	if err := c.checkLive(); err != nil {
		return c.errh.invoke(err)
	}
	rank, size := c.Rank(), c.Size()
	if len(sendBuf)%size != 0 {
		return c.errh.invoke(fmt.Errorf("mpi: alltoall send buffer %d not divisible by %d", len(sendBuf), size))
	}
	blk := len(sendBuf) / size
	if len(recvBuf) < size*blk {
		return c.errh.invoke(fmt.Errorf("mpi: alltoall recv buffer %d < %d bytes", len(recvBuf), size*blk))
	}
	tag := c.nextCollTag()
	copy(recvBuf[rank*blk:rank*blk+blk], sendBuf[rank*blk:rank*blk+blk])
	for i := 1; i < size; i++ {
		to := (rank + i) % size
		from := (rank - i + size) % size
		if err := c.sendrecvT(sendBuf[to*blk:to*blk+blk], to,
			recvBuf[from*blk:from*blk+blk], from, tag); err != nil {
			return c.errh.invoke(err)
		}
	}
	return nil
}

// Typed convenience collectives used throughout the benchmarks and
// example applications.

// AllreduceFloat64 reduces a single float64 across the communicator.
func (c *Comm) AllreduceFloat64(v float64, op Op) (float64, error) {
	in := PackFloat64s([]float64{v})
	out := make([]byte, 8)
	if err := c.Allreduce(in, out, 1, Float64, op); err != nil {
		return 0, err
	}
	return UnpackFloat64s(out)[0], nil
}

// AllreduceInt64 reduces a single int64 across the communicator.
func (c *Comm) AllreduceInt64(v int64, op Op) (int64, error) {
	in := PackInt64s([]int64{v})
	out := make([]byte, 8)
	if err := c.Allreduce(in, out, 1, Int64, op); err != nil {
		return 0, err
	}
	return UnpackInt64s(out)[0], nil
}
