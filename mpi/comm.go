package mpi

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"gompi/internal/coll"
	"gompi/internal/core"
	"gompi/internal/core/cid"
	"gompi/internal/pmix"
	"gompi/internal/pml"
)

// builtin communicator identities for the exCID scheme (PGCID field zero,
// distinguished by a reserved subfield value; see cid.NewBuiltin).
const (
	builtinWorld uint8 = 1
	builtinSelf  uint8 = 2
)

// Comm is an MPI communicator.
type Comm struct {
	p     *Process
	sess  *Session
	ch    *pml.Channel
	group *Group
	gen   *cid.Gen // exCID derivation state; nil for consensus-mode comms
	name  string
	errh  *Errhandler

	mu      sync.Mutex
	collSeq uint64
	coll    *coll.Module // lazily bound to the instance's coll framework
	freed   bool
	attrs   map[int]any
}

// ErrCommFreed is returned when using a communicator after Free.
var ErrCommFreed = errors.New("mpi: communicator has been freed")

// Rank returns the calling process's rank in the communicator.
func (c *Comm) Rank() int { return c.ch.Rank() }

// Size returns the number of processes in the communicator.
func (c *Comm) Size() int { return c.ch.Size() }

// Name returns the communicator's diagnostic name.
func (c *Comm) Name() string { return c.name }

// Group returns the communicator's group (MPI_Comm_group).
func (c *Comm) Group() *Group { return newGroup(c.p, c.group.ranks) }

// Session returns the session this communicator belongs to (nil only for
// communicators of a process that was initialized via the WPM — and even
// those belong to the internal session).
func (c *Comm) Session() *Session { return c.sess }

// LocalCID exposes the communicator's local 16-bit CID (diagnostics).
func (c *Comm) LocalCID() uint16 { return c.ch.LocalCID() }

// ExCID exposes the communicator's 128-bit extended CID; zero-valued in
// consensus mode.
func (c *Comm) ExCID() pml.ExCID { return c.ch.Ex() }

// UsesExCID reports whether this communicator uses extended-CID matching.
func (c *Comm) UsesExCID() bool { return c.gen != nil }

func (c *Comm) checkLive() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.freed {
		return ErrCommFreed
	}
	return nil
}

// nextCollTag returns the internal (negative) tag for the communicator's
// next collective operation. Collectives on one communicator are totally
// ordered at every member, so per-member counters agree. Each collective
// instance owns a window of 16 consecutive tags (neighborhood collectives
// use one slot per neighbour).
func (c *Comm) nextCollTag() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.collSeq++
	return -int(16 + c.collSeq%(1<<20)*16)
}

// newBuiltinComm constructs mpi://world- or mpi://self-backed built-in
// communicators during WPM initialization. In consensus mode they receive
// the reserved consistent CIDs 0 and 1; in exCID mode they carry the
// zero-PGCID built-in exCIDs described in §III-B3.
func newBuiltinComm(p *Process, sess *Session, ranks []int, which uint8) (*Comm, error) {
	inst := p.inst
	engine := inst.Engine()
	myRank := -1
	for i, r := range ranks {
		if r == p.rank {
			myRank = i
		}
	}
	if myRank < 0 {
		return nil, fmt.Errorf("mpi: process %d not in builtin comm ranks", p.rank)
	}
	name := "MPI_COMM_WORLD"
	if which == builtinSelf {
		name = "MPI_COMM_SELF"
	}

	localCID := uint16(which - 1) // world: 0, self: 1, reserved indices
	var gen *cid.Gen
	var ch *pml.Channel
	var err error
	if inst.Config().EffectiveCIDMode() == core.CIDExtended {
		gen = cid.NewBuiltin(which)
		ch, err = engine.AddChannel(localCID, gen.Ex(), true, myRank, ranks)
	} else {
		ch, err = engine.AddChannel(localCID, pml.ExCID{}, false, myRank, ranks)
	}
	if err != nil {
		return nil, fmt.Errorf("mpi: register %s: %w", name, err)
	}
	c := &Comm{
		p:     p,
		sess:  sess,
		ch:    ch,
		group: newGroup(p, ranks),
		gen:   gen,
		name:  name,
		// MPI's default is MPI_ERRORS_ARE_FATAL; as a deliberate Go-idiom
		// deviation, errors are returned by default and callers may opt
		// into fatal behaviour with SetErrhandler(ErrorsAreFatal()).
		errh:  ErrorsReturn(),
		attrs: make(map[int]any),
	}
	sess.commCreated()
	return c, nil
}

// SetErrhandler replaces the communicator's error handler
// (MPI_Comm_set_errhandler).
func (c *Comm) SetErrhandler(h *Errhandler) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if h == nil {
		h = ErrorsReturn()
	}
	c.errh = h
}

// newCommFromGroup implements MPI_Comm_create_from_group: acquire a PGCID
// through the runtime's collective group constructor, pick an independent
// local CID, and register the channel under the resulting exCID.
func newCommFromGroup(s *Session, group *Group, tag string, errh *Errhandler) (*Comm, error) {
	p := s.p
	inst := p.inst
	if inst.Config().EffectiveCIDMode() != core.CIDExtended {
		return nil, fmt.Errorf("%w: CommCreateFromGroup requires exCID support (PMIx groups + ob1)", ErrUnsupported)
	}
	myRank := group.Rank()
	if myRank == Undefined {
		return nil, fmt.Errorf("mpi: calling process %d is not in the group", p.rank)
	}
	ranks := group.GlobalRanks()

	// Re-validate the group against the CURRENT terminated set before the
	// collective: a SurvivorGroup snapshot is one-shot, and a member may
	// have died between the snapshot and this call. Failing here is local
	// and immediate; discovering it inside the group construct would cost
	// every member a control-plane round first.
	for _, dead := range inst.Client().TerminatedRanks() {
		for _, r := range ranks {
			if r == dead {
				return nil, fmt.Errorf("mpi: comm create from group %q: member %d already terminated: %w", tag, r, pmix.ErrTerminated)
			}
		}
	}

	// The runtime collective runs WITHOUT the local CID lock: threads of
	// one process may create communicators from different groups
	// concurrently (the Sessions isolation model, §II-B), and their
	// collectives may complete in different orders on different processes.
	// Holding a process-wide lock across the collective would deadlock.
	gname := "mpi.comm/" + tag
	res, err := inst.Client().GroupConstruct(gname, ranks, groupOpts(inst))
	if err != nil {
		return nil, fmt.Errorf("mpi: comm create from group %q: %w", tag, err)
	}
	gen := cid.NewFromPGCID(res.PGCID)
	ch, err := registerExChannel(inst, gen, myRank, ranks)
	if err != nil {
		return nil, err
	}
	inst.Trace().Logf("comm", "created %q: pgcid=%d localCID=%d size=%d", tag, res.PGCID, ch.LocalCID(), len(ranks))
	c := &Comm{
		p:     p,
		sess:  s,
		ch:    ch,
		group: newGroup(p, ranks),
		gen:   gen,
		name:  fmt.Sprintf("comm(%s)", tag),
		errh:  errh,
		attrs: make(map[int]any),
	}
	s.commCreated()
	return c, nil
}

func groupOpts(inst *core.Instance) pmix.GroupOpts {
	return pmix.GroupOpts{AssignContextID: true, Timeout: inst.Timeout()}
}

// registerExChannel atomically picks a free local CID and registers an
// exCID channel under it. Only this local step takes the CID lock.
func registerExChannel(inst *core.Instance, gen *cid.Gen, myRank int, ranks []int) (*pml.Channel, error) {
	lock := inst.CIDLock()
	lock.Lock()
	defer lock.Unlock()
	engine := inst.Engine()
	return engine.AddChannel(engine.AllocCID(0), gen.Ex(), true, myRank, ranks)
}

// Dup duplicates the communicator (MPI_Comm_dup). The identifier strategy
// follows the paper:
//
//   - consensus mode: the baseline multi-round reduction over the parent;
//   - exCID mode, default: a fresh PGCID from the runtime on every dup,
//     matching the measured prototype behaviour behind Fig. 4;
//   - exCID mode with Config.DupUseSubfields: derive the child exCID from
//     the parent's subfields (§III-B3) with no runtime traffic, falling
//     back to a fresh PGCID when the subfield space is exhausted.
func (c *Comm) Dup() (*Comm, error) {
	if err := c.checkLive(); err != nil {
		return nil, c.errh.invoke(err)
	}
	inst := c.p.inst
	if c.gen == nil {
		// Consensus path over the parent communicator.
		newCID, err := c.consensusCID()
		if err != nil {
			return nil, c.errh.invoke(err)
		}
		ch, err := inst.Engine().AddChannel(newCID, pml.ExCID{}, false, c.Rank(), c.group.ranks)
		if err != nil {
			return nil, c.errh.invoke(err)
		}
		return c.child(ch, nil, c.name+"+dup"), nil
	}

	var gen *cid.Gen
	if inst.Config().DupUseSubfields {
		g, err := c.gen.Derive()
		if err == nil {
			gen = g
		} else if !errors.Is(err, cid.ErrExhausted) {
			return nil, c.errh.invoke(err)
		}
	}
	if gen == nil {
		// Fresh PGCID from the runtime (the prototype's measured path).
		// The sequence number is derived from the parent's identity so
		// concurrent dups of different communicators cannot collide.
		seq := inst.NextCommSeq(fmt.Sprintf("dup/%v", c.ch.Ex()))
		gname := fmt.Sprintf("mpi.dup/%d.%d/%d", c.ch.Ex().PGCID, c.ch.Ex().Sub, seq)
		res, err := inst.Client().GroupConstruct(gname, c.group.ranks, groupOpts(inst))
		if err != nil {
			return nil, c.errh.invoke(fmt.Errorf("mpi: dup: %w", err))
		}
		gen = cid.NewFromPGCID(res.PGCID)
	}
	ch, err := registerExChannel(inst, gen, c.Rank(), c.group.ranks)
	if err != nil {
		return nil, c.errh.invoke(err)
	}
	return c.child(ch, gen, c.name+"+dup"), nil
}

func (c *Comm) child(ch *pml.Channel, gen *cid.Gen, name string) *Comm {
	nc := &Comm{
		p:     c.p,
		sess:  c.sess,
		ch:    ch,
		group: newGroup(c.p, rankSlice(ch)),
		gen:   gen,
		name:  name,
		errh:  c.errh,
		attrs: make(map[int]any),
	}
	if c.sess != nil {
		c.sess.commCreated()
	}
	return nc
}

func rankSlice(ch *pml.Channel) []int {
	out := make([]int, ch.Size())
	for i := range out {
		out[i] = ch.GlobalRank(i)
	}
	return out
}

// consensusCID runs the baseline CID agreement over this communicator.
func (c *Comm) consensusCID() (uint16, error) {
	inst := c.p.inst
	lock := inst.CIDLock()
	lock.Lock()
	defer lock.Unlock()
	engine := inst.Engine()
	return cid.Consensus(commAllreducer{c}, func(min uint16) uint16 {
		return engine.AllocCID(min)
	})
}

// commAllreducer adapts a communicator to the cid.Allreducer interface.
type commAllreducer struct{ c *Comm }

func (a commAllreducer) AllreduceMax2Uint32(v [2]uint32) ([2]uint32, error) {
	in := PackUint32s(v[:])
	out := make([]byte, len(in))
	if err := a.c.Allreduce(in, out, 2, Uint32, OpMax); err != nil {
		return [2]uint32{}, err
	}
	r := UnpackUint32s(out)
	return [2]uint32{r[0], r[1]}, nil
}

// Split partitions the communicator by color (MPI_Comm_split). Processes
// passing Undefined as color receive a nil communicator. Within each new
// communicator, ranks are ordered by (key, parent rank).
func (c *Comm) Split(color, key int) (*Comm, error) {
	if err := c.checkLive(); err != nil {
		return nil, c.errh.invoke(err)
	}
	// Allgather (color, key) over the parent.
	mine := PackInt64s([]int64{int64(color), int64(key)})
	all := make([]byte, 16*c.Size())
	if err := c.Allgather(mine, all); err != nil {
		return nil, c.errh.invoke(fmt.Errorf("mpi: split allgather: %w", err))
	}
	vals := UnpackInt64s(all)

	type member struct{ color, key, parentRank int }
	var mates []member
	for r := 0; r < c.Size(); r++ {
		col := int(vals[2*r])
		if col == color && color != Undefined {
			mates = append(mates, member{col, int(vals[2*r+1]), r})
		}
	}
	inst := c.p.inst

	if color == Undefined {
		// Non-members still participate in consensus rounds in consensus
		// mode (they echo the floor); in exCID mode they are done.
		if c.gen == nil {
			colors := collectColors(vals)
			for range colors {
				if _, err := c.consensusCIDNonMember(); err != nil {
					return nil, c.errh.invoke(err)
				}
			}
		}
		return nil, nil
	}

	sort.Slice(mates, func(i, j int) bool {
		if mates[i].key != mates[j].key {
			return mates[i].key < mates[j].key
		}
		return mates[i].parentRank < mates[j].parentRank
	})
	subRanks := make([]int, len(mates))
	myNew := -1
	for i, m := range mates {
		subRanks[i] = c.group.ranks[m.parentRank]
		if m.parentRank == c.Rank() {
			myNew = i
		}
	}

	if c.gen == nil {
		// Consensus mode: every color's members run the agreement while the
		// other parent ranks echo; colors are processed in sorted order so
		// all members iterate identically.
		colors := collectColors(vals)
		var myCID uint16
		for _, col := range colors {
			if col == color {
				v, err := c.consensusCID()
				if err != nil {
					return nil, c.errh.invoke(err)
				}
				myCID = v
			} else {
				if _, err := c.consensusCIDNonMember(); err != nil {
					return nil, c.errh.invoke(err)
				}
			}
		}
		ch, err := inst.Engine().AddChannel(myCID, pml.ExCID{}, false, myNew, subRanks)
		if err != nil {
			return nil, c.errh.invoke(err)
		}
		return c.child(ch, nil, fmt.Sprintf("%s+split(%d)", c.name, color)), nil
	}

	// exCID mode: each color's communicator gets its own PGCID. The split
	// is partial participation from the parent's viewpoint, so subfield
	// derivation is not applicable (§III-B3).
	seq := inst.NextCommSeq(fmt.Sprintf("split/%v", c.ch.Ex()))
	gname := fmt.Sprintf("mpi.split/%d.%d/%d/%d", c.ch.Ex().PGCID, c.ch.Ex().Sub, color, seq)
	res, err := inst.Client().GroupConstruct(gname, subRanks, groupOpts(inst))
	if err != nil {
		return nil, c.errh.invoke(fmt.Errorf("mpi: split: %w", err))
	}
	gen := cid.NewFromPGCID(res.PGCID)
	ch, err := registerExChannel(inst, gen, myNew, subRanks)
	if err != nil {
		return nil, c.errh.invoke(err)
	}
	return c.child(ch, gen, fmt.Sprintf("%s+split(%d)", c.name, color)), nil
}

func collectColors(vals []int64) []int {
	seen := make(map[int]bool)
	var colors []int
	for i := 0; i < len(vals); i += 2 {
		col := int(vals[i])
		if col != Undefined && !seen[col] {
			seen[col] = true
			colors = append(colors, col)
		}
	}
	sort.Ints(colors)
	return colors
}

// consensusCIDNonMember participates in another subgroup's consensus rounds
// without proposing: it echoes the floor so the reduction structure stays
// collective over the parent.
func (c *Comm) consensusCIDNonMember() (uint16, error) {
	return cid.Consensus(commAllreducer{c}, func(min uint16) uint16 { return min })
}

// CreateGroup builds a communicator over a subgroup of this communicator,
// collective only over the subgroup's members (MPI_Comm_create_group). In
// the exCID scheme partial participation always acquires a fresh PGCID
// (§III-B3); the operation is unsupported in consensus mode.
func (c *Comm) CreateGroup(group *Group, tag int) (*Comm, error) {
	if err := c.checkLive(); err != nil {
		return nil, c.errh.invoke(err)
	}
	if c.gen == nil {
		return nil, c.errh.invoke(fmt.Errorf("%w: MPI_Comm_create_group needs the exCID generator", ErrUnsupported))
	}
	myRank := group.Rank()
	if myRank == Undefined {
		return nil, c.errh.invoke(fmt.Errorf("mpi: calling process not in group"))
	}
	inst := c.p.inst
	ranks := group.GlobalRanks()
	gname := fmt.Sprintf("mpi.cgrp/%d.%d/%d", c.ch.Ex().PGCID, c.ch.Ex().Sub, tag)
	res, err := inst.Client().GroupConstruct(gname, ranks, groupOpts(inst))
	if err != nil {
		return nil, c.errh.invoke(fmt.Errorf("mpi: create_group: %w", err))
	}
	gen := cid.NewFromPGCID(res.PGCID)
	ch, err := registerExChannel(inst, gen, myRank, ranks)
	if err != nil {
		return nil, c.errh.invoke(err)
	}
	return c.child(ch, gen, fmt.Sprintf("%s+cgrp(%d)", c.name, tag)), nil
}

// Revoke marks the communicator revoked on every member (the ULFM
// MPIX_Comm_revoke analogue). All pending and future operations on it —
// on every rank, not just the caller — fail with an error of class
// ErrClassRevoked. A rank that observes a process failure revokes the
// communicator before freeing it, so survivors blocked in operations
// among themselves (which no failure event will ever fail) are
// interrupted and reach the rebuild too. Revoking twice, or revoking a
// communicator another member already revoked, is a no-op.
func (c *Comm) Revoke() error {
	if err := c.checkLive(); err != nil {
		return c.errh.invoke(err)
	}
	c.p.inst.Engine().Revoke(c.ch)
	return nil
}

// Free releases the communicator's local resources (MPI_Comm_free).
// Like the prototype, runtime-level PMIx group state is not destructed
// here; it is reclaimed with the session.
func (c *Comm) Free() error {
	c.mu.Lock()
	if c.freed {
		c.mu.Unlock()
		return ErrCommFreed
	}
	c.freed = true
	c.mu.Unlock()
	c.p.inst.Engine().RemoveChannel(c.ch)
	if c.sess != nil {
		c.sess.commFreed()
	}
	return nil
}

// freeLocal tears down without session bookkeeping errors during aborts.
func (c *Comm) freeLocal() {
	c.mu.Lock()
	if c.freed {
		c.mu.Unlock()
		return
	}
	c.freed = true
	c.mu.Unlock()
	if e := c.p.inst.Engine(); e != nil {
		e.RemoveChannel(c.ch)
	}
	if c.sess != nil {
		c.sess.commFreed()
	}
}

// SetName sets the communicator's diagnostic name (MPI_Comm_set_name).
func (c *Comm) SetName(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.name = name
}

// AttrSet caches an attribute on the communicator (MPI_Comm_set_attr).
func (c *Comm) AttrSet(keyval int, value any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.attrs[keyval] = value
}

// AttrGet retrieves a communicator attribute (MPI_Comm_get_attr).
func (c *Comm) AttrGet(keyval int) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.attrs[keyval]
	return v, ok
}

// AttrDelete removes a communicator attribute (MPI_Comm_delete_attr).
func (c *Comm) AttrDelete(keyval int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.attrs, keyval)
}

// Compare relates two communicators (MPI_Comm_compare): Ident only for the
// same handle, Congruent for equal groups with different contexts.
func (c *Comm) Compare(other *Comm) int {
	if c == other {
		return Ident
	}
	g := c.group.Compare(other.group)
	if g == Ident {
		return Congruent
	}
	return g
}
