package mpi

import "testing"

func g(ranks ...int) *Group { return newGroup(nil, ranks) }

func TestGroupSizeAndRanks(t *testing.T) {
	grp := g(4, 2, 9)
	if grp.Size() != 3 {
		t.Fatalf("Size = %d", grp.Size())
	}
	got := grp.GlobalRanks()
	want := []int{4, 2, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("GlobalRanks = %v", got)
		}
	}
	// Mutating the returned slice must not affect the group.
	got[0] = 99
	if grp.GlobalRanks()[0] != 4 {
		t.Fatal("GlobalRanks aliases internal state")
	}
}

func TestGroupInclExcl(t *testing.T) {
	grp := g(10, 11, 12, 13)
	in, err := grp.Incl([]int{3, 1})
	if err != nil {
		t.Fatal(err)
	}
	if in.Size() != 2 || in.GlobalRanks()[0] != 13 || in.GlobalRanks()[1] != 11 {
		t.Fatalf("Incl = %v", in.GlobalRanks())
	}
	if _, err := grp.Incl([]int{4}); err == nil {
		t.Fatal("Incl out of range should fail")
	}
	ex, err := grp.Excl([]int{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if ex.Size() != 2 || ex.GlobalRanks()[0] != 11 || ex.GlobalRanks()[1] != 13 {
		t.Fatalf("Excl = %v", ex.GlobalRanks())
	}
	if _, err := grp.Excl([]int{-1}); err == nil {
		t.Fatal("Excl out of range should fail")
	}
}

func TestGroupSetAlgebra(t *testing.T) {
	a := g(1, 2, 3)
	b := g(3, 4)
	u := a.Union(b)
	if u.Size() != 4 {
		t.Fatalf("Union = %v", u.GlobalRanks())
	}
	i := a.Intersection(b)
	if i.Size() != 1 || i.GlobalRanks()[0] != 3 {
		t.Fatalf("Intersection = %v", i.GlobalRanks())
	}
	d := a.Difference(b)
	if d.Size() != 2 || d.GlobalRanks()[0] != 1 || d.GlobalRanks()[1] != 2 {
		t.Fatalf("Difference = %v", d.GlobalRanks())
	}
	// Algebraic identities.
	if a.Intersection(a).Compare(a) != Ident {
		t.Fatal("A ∩ A != A")
	}
	if a.Union(a).Compare(a) != Ident {
		t.Fatal("A ∪ A != A")
	}
	if a.Difference(a).Size() != 0 {
		t.Fatal("A \\ A != ∅")
	}
}

func TestGroupTranslateRanks(t *testing.T) {
	a := g(5, 6, 7)
	b := g(7, 5)
	out, err := a.TranslateRanks([]int{0, 1, 2}, b)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 1 || out[1] != Undefined || out[2] != 0 {
		t.Fatalf("TranslateRanks = %v", out)
	}
	if _, err := a.TranslateRanks([]int{3}, b); err == nil {
		t.Fatal("out-of-range translate should fail")
	}
}

func TestGroupCompare(t *testing.T) {
	a := g(1, 2, 3)
	if a.Compare(g(1, 2, 3)) != Ident {
		t.Fatal("identical groups not Ident")
	}
	if a.Compare(g(3, 2, 1)) != Similar {
		t.Fatal("permuted groups not Similar")
	}
	if a.Compare(g(1, 2)) != Unequal {
		t.Fatal("different-size groups not Unequal")
	}
	if a.Compare(g(1, 2, 4)) != Unequal {
		t.Fatal("different members not Unequal")
	}
}

func TestGroupRankUndefinedWithoutProcess(t *testing.T) {
	if got := g(1, 2).Rank(); got != Undefined {
		t.Fatalf("Rank = %d, want Undefined", got)
	}
}

func TestReduceKernels(t *testing.T) {
	cases := []struct {
		op   Op
		a, b int64
		want int64
	}{
		{OpSum, 3, 4, 7},
		{OpProd, 3, 4, 12},
		{OpMax, 3, 4, 4},
		{OpMin, 3, 4, 3},
		{OpLAnd, 1, 0, 0},
		{OpLAnd, 2, 3, 1},
		{OpLOr, 0, 0, 0},
		{OpLOr, 0, 5, 1},
		{OpBAnd, 6, 3, 2},
		{OpBOr, 6, 3, 7},
	}
	for _, tc := range cases {
		inout := PackInt64s([]int64{tc.a})
		in := PackInt64s([]int64{tc.b})
		if err := reduce(tc.op, Int64, inout, in, 1); err != nil {
			t.Fatalf("%v: %v", tc.op, err)
		}
		if got := UnpackInt64s(inout)[0]; got != tc.want {
			t.Errorf("%v(%d,%d) = %d, want %d", tc.op, tc.a, tc.b, got, tc.want)
		}
	}
	// Float64 path.
	inout := PackFloat64s([]float64{2.5})
	in := PackFloat64s([]float64{4.0})
	if err := reduce(OpSum, Float64, inout, in, 1); err != nil {
		t.Fatal(err)
	}
	if got := UnpackFloat64s(inout)[0]; got != 6.5 {
		t.Fatalf("float sum = %v", got)
	}
	// Bitwise ops on floats are rejected.
	if err := reduce(OpBAnd, Float64, inout, in, 1); err == nil {
		t.Fatal("bitwise op on float should fail")
	}
	// Uint32 vector path (used by the CID consensus adapter).
	io2 := PackUint32s([]uint32{1, 200})
	in2 := PackUint32s([]uint32{7, 100})
	if err := reduce(OpMax, Uint32, io2, in2, 2); err != nil {
		t.Fatal(err)
	}
	if got := UnpackUint32s(io2); got[0] != 7 || got[1] != 200 {
		t.Fatalf("uint32 max = %v", got)
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	f := []float64{1.5, -2.25, 3e100}
	if got := UnpackFloat64s(PackFloat64s(f)); len(got) != 3 || got[2] != 3e100 {
		t.Fatalf("float64 roundtrip = %v", got)
	}
	i := []int64{-1, 0, 1 << 40}
	if got := UnpackInt64s(PackInt64s(i)); got[0] != -1 || got[2] != 1<<40 {
		t.Fatalf("int64 roundtrip = %v", got)
	}
}

func TestInfoPreInit(t *testing.T) {
	// Info objects work standalone — before any initialization (§III-B5).
	info := NewInfo()
	info.Set("thread_level", "MPI_THREAD_MULTIPLE")
	info.Set("a", "1")
	if v, ok := info.Get("thread_level"); !ok || v != "MPI_THREAD_MULTIPLE" {
		t.Fatalf("Get = %q,%v", v, ok)
	}
	d := info.Dup()
	info.Delete("a")
	if _, ok := d.Get("a"); !ok {
		t.Fatal("Dup lost a key")
	}
	if info.Len() != 1 || d.Len() != 2 {
		t.Fatalf("Len = %d/%d", info.Len(), d.Len())
	}
	var nilInfo *Info
	if nilInfo.Dup().Len() != 0 {
		t.Fatal("nil Dup should be empty")
	}
}

func TestErrhandlerPreInit(t *testing.T) {
	var captured error
	h := ErrhandlerCreate("custom", func(err error) { captured = err })
	if h.Name() != "custom" {
		t.Fatalf("Name = %q", h.Name())
	}
	err := h.invoke(ErrNotInitialized)
	if err != ErrNotInitialized || captured != ErrNotInitialized {
		t.Fatal("handler not invoked")
	}
	if h.invoke(nil) != nil {
		t.Fatal("nil error should pass through untouched")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("ErrorsAreFatal should panic")
		}
	}()
	_ = ErrorsAreFatal().invoke(ErrNotInitialized)
}
