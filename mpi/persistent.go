package mpi

import (
	"errors"
	"fmt"
	"sync"
)

// Persistent communication requests (MPI_Send_init / MPI_Recv_init /
// MPI_Start / MPI_Startall): a prepared operation that can be started many
// times, the classic optimization for fixed communication patterns such as
// halo exchanges.

// ErrActive is returned when starting an already-active persistent request
// or freeing one mid-flight.
var ErrActive = errors.New("mpi: persistent request is already active")

type persistentKind int

const (
	persistSend persistentKind = iota
	persistSsend
	persistRecv
)

// PersistentRequest is a reusable communication operation bound to fixed
// arguments. Start it, wait for completion, and start it again.
type PersistentRequest struct {
	c    *Comm
	kind persistentKind
	buf  []byte
	peer int
	tag  int

	mu     sync.Mutex
	active Request
}

// SendInit prepares a persistent standard-mode send (MPI_Send_init).
func (c *Comm) SendInit(buf []byte, dest, tag int) (*PersistentRequest, error) {
	if err := c.checkP2P(dest, tag, false); err != nil {
		return nil, c.errh.invoke(err)
	}
	return &PersistentRequest{c: c, kind: persistSend, buf: buf, peer: dest, tag: tag}, nil
}

// SsendInit prepares a persistent synchronous-mode send (MPI_Ssend_init).
func (c *Comm) SsendInit(buf []byte, dest, tag int) (*PersistentRequest, error) {
	if err := c.checkP2P(dest, tag, false); err != nil {
		return nil, c.errh.invoke(err)
	}
	return &PersistentRequest{c: c, kind: persistSsend, buf: buf, peer: dest, tag: tag}, nil
}

// RecvInit prepares a persistent receive (MPI_Recv_init). src may be
// AnySource and tag AnyTag.
func (c *Comm) RecvInit(buf []byte, src, tag int) (*PersistentRequest, error) {
	if err := c.checkP2P(src, tag, true); err != nil {
		return nil, c.errh.invoke(err)
	}
	return &PersistentRequest{c: c, kind: persistRecv, buf: buf, peer: src, tag: tag}, nil
}

// Start activates the prepared operation (MPI_Start). The request must not
// already be active.
func (r *PersistentRequest) Start() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.active != nil {
		if done, _, _ := r.active.Test(); !done {
			return r.c.errh.invoke(ErrActive)
		}
	}
	switch r.kind {
	case persistSend:
		r.active = r.c.Isend(r.buf, r.peer, r.tag)
	case persistSsend:
		r.active = r.c.Issend(r.buf, r.peer, r.tag)
	case persistRecv:
		r.active = r.c.Irecv(r.buf, r.peer, r.tag)
	default:
		return fmt.Errorf("mpi: unknown persistent kind %d", r.kind)
	}
	return nil
}

// Wait blocks for the active operation (MPI_Wait on a persistent request):
// the request returns to the inactive (startable) state.
func (r *PersistentRequest) Wait() (Status, error) {
	r.mu.Lock()
	active := r.active
	r.mu.Unlock()
	if active == nil {
		return Status{}, fmt.Errorf("mpi: persistent request not started")
	}
	return active.Wait()
}

// Test polls the active operation.
func (r *PersistentRequest) Test() (bool, Status, error) {
	r.mu.Lock()
	active := r.active
	r.mu.Unlock()
	if active == nil {
		return false, Status{}, fmt.Errorf("mpi: persistent request not started")
	}
	return active.Test()
}

// Startable is anything MPI_Start applies to: persistent point-to-point
// requests, persistent collectives, and partitioned requests.
type Startable interface {
	Start() error
}

// StartAll starts a set of startable requests (MPI_Startall): persistent
// sends and receives, persistent collectives, and partitioned requests
// compose freely. The loop body allocates nothing; callers who reuse the
// argument slice keep the whole call allocation-free.
//
//gompilint:noalloc
func StartAll(reqs ...Startable) error {
	for _, r := range reqs {
		if err := r.Start(); err != nil {
			return err
		}
	}
	return nil
}

// WaitAllPersistent waits for a set of persistent requests, returning the
// first error.
func WaitAllPersistent(reqs ...*PersistentRequest) error {
	var first error
	for _, r := range reqs {
		if _, err := r.Wait(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Waitany blocks until one of the requests completes and returns its index
// (MPI_Waitany). Nil entries are skipped; if all entries are nil it returns
// Undefined.
func Waitany(reqs []Request) (int, Status, error) {
	type result struct {
		i   int
		st  Status
		err error
	}
	live := 0
	done := make(chan result, len(reqs))
	for i, r := range reqs {
		if r == nil {
			continue
		}
		live++
		go func(i int, r Request) {
			st, err := r.Wait()
			done <- result{i, st, err}
		}(i, r)
	}
	if live == 0 {
		return Undefined, Status{}, nil
	}
	first := <-done
	return first.i, first.st, first.err
}

// Testall reports whether every request has completed (MPI_Testall). Nil
// entries count as complete.
func Testall(reqs []Request) (bool, error) {
	for _, r := range reqs {
		if r == nil {
			continue
		}
		done, _, err := r.Test()
		if err != nil {
			return false, err
		}
		if !done {
			return false, nil
		}
	}
	return true, nil
}

// Testany polls the requests and returns the index and status of one that
// has completed, or (Undefined, false) if none has (MPI_Testany).
func Testany(reqs []Request) (int, Status, bool, error) {
	for i, r := range reqs {
		if r == nil {
			continue
		}
		done, st, err := r.Test()
		if err != nil {
			return i, st, true, err
		}
		if done {
			return i, st, true, nil
		}
	}
	return Undefined, Status{}, false, nil
}

// Testsome returns the indices of all currently-completed requests
// (MPI_Testsome).
func Testsome(reqs []Request) ([]int, error) {
	var out []int
	for i, r := range reqs {
		if r == nil {
			continue
		}
		done, _, err := r.Test()
		if err != nil {
			return out, err
		}
		if done {
			out = append(out, i)
		}
	}
	return out, nil
}
