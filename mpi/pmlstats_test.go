package mpi_test

import (
	"fmt"
	"testing"

	"gompi/mpi"
)

// TestPMLStatsExposeHandshake is the MPI-level assertion of the Fig. 5
// mechanism: on an exCID communicator the first message to a peer carries
// the extended header and exactly one ACK flows back; steady-state traffic
// uses the fast header.
func TestPMLStatsExposeHandshake(t *testing.T) {
	run(t, 1, 2, exCfg(), func(p *mpi.Process) error {
		if p.PMLStatsSnapshot() != (mpi.PMLStats{}) {
			return fmt.Errorf("stats non-zero before init")
		}
		sess, err := p.SessionInit(nil, nil)
		if err != nil {
			return err
		}
		defer sess.Finalize()
		grp, err := sess.GroupFromPset(mpi.PsetWorld)
		if err != nil {
			return err
		}
		comm, err := sess.CommCreateFromGroup(grp, "stats", nil, nil)
		if err != nil {
			return err
		}
		defer comm.Free()

		buf := make([]byte, 1)
		const msgs = 10
		if comm.Rank() == 0 {
			for i := 0; i < msgs; i++ {
				if err := comm.Send([]byte{byte(i)}, 1, 1); err != nil {
					return err
				}
				// Wait for the echo so the ACK has certainly arrived after
				// the first round trip.
				if _, err := comm.Recv(buf, 1, 2); err != nil {
					return err
				}
			}
			st := p.PMLStatsSnapshot()
			if st.ExtSent != 1 {
				return fmt.Errorf("ExtSent = %d, want exactly 1 (first message only)", st.ExtSent)
			}
			if st.FastSent != msgs-1 {
				return fmt.Errorf("FastSent = %d, want %d", st.FastSent, msgs-1)
			}
			if st.AcksReceived != 1 {
				return fmt.Errorf("AcksReceived = %d, want 1", st.AcksReceived)
			}
			return nil
		}
		for i := 0; i < msgs; i++ {
			if _, err := comm.Recv(buf, 0, 1); err != nil {
				return err
			}
			if err := comm.Send(buf, 0, 2); err != nil {
				return err
			}
		}
		st := p.PMLStatsSnapshot()
		if st.AcksSent != 1 {
			return fmt.Errorf("receiver AcksSent = %d, want 1", st.AcksSent)
		}
		return nil
	})
}
