package mpi

import (
	"errors"
	"fmt"
	"sync"

	"gompi/internal/coll"
)

// Persistent collectives (MPI 4.0 MPI_Barrier_init and friends): the
// communicator compiles the collective's schedule once, reserves a private
// tag window, and preallocates every staging buffer and the engine state —
// so each Start replays the bound schedule with no decision-table walk, no
// tag sequencing, and no allocation. The classic use is an iterative
// solver running the same allreduce every timestep.
//
// Like all MPI persistent collectives, the *Init calls are collective and
// must be issued in the same order on every member (that is what lets each
// member reserve the same tag window without communicating), arguments
// must stay bound until Free, and at most one round may be active at a
// time.

// ErrCollNotStarted is returned when Wait or Test is applied to a
// persistent collective with no active round.
var ErrCollNotStarted = errors.New("mpi: persistent collective not started")

// ErrCollFreed is returned when a freed persistent collective is reused.
var ErrCollFreed = errors.New("mpi: persistent collective already freed")

// PersistentColl is a startable, reusable collective operation. It
// satisfies Startable, so StartAll composes it with persistent
// point-to-point requests.
type PersistentColl struct {
	c       *Comm
	ex      *coll.Exec
	baseTag int

	mu      sync.Mutex
	active  bool
	freed   bool
	trigger chan struct{}
	done    chan error
}

// collInit is the shared construction path: reserve a tag window, compile
// and bind the schedule, and hand the Exec to a dedicated worker goroutine
// (one per request, living until Free) so Start never spawns.
func (c *Comm) collInit(prep func(m *coll.Module, baseTag int) (*coll.Exec, error)) (*PersistentColl, error) {
	if err := c.checkLive(); err != nil {
		return nil, c.errh.invoke(err)
	}
	m, err := c.collModule()
	if err != nil {
		return nil, c.errh.invoke(err)
	}
	base, err := c.ch.ReservePersistentWindow()
	if err != nil {
		return nil, c.errh.invoke(err)
	}
	ex, err := prep(m, base)
	if err != nil {
		c.ch.ReleasePersistentWindow(base)
		return nil, c.errh.invoke(err)
	}
	p := &PersistentColl{
		c:       c,
		ex:      ex,
		baseTag: base,
		trigger: make(chan struct{}, 1),
		done:    make(chan error, 1),
	}
	go p.worker()
	return p, nil
}

func (p *PersistentColl) worker() {
	for range p.trigger {
		p.done <- p.ex.Run()
	}
}

// Start begins one round (MPI_Start). The request must be inactive. Start
// is the persistent-collective hot path — all setup happened at *Init time,
// so arming a round allocates nothing (the trigger value is the zero-sized
// struct{}{}); TestPersistentCollStartAllocs corroborates the annotation.
//
//gompilint:noalloc
func (p *PersistentColl) Start() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.freed {
		return p.c.errh.invoke(ErrCollFreed)
	}
	if p.active {
		return p.c.errh.invoke(ErrActive)
	}
	p.active = true
	p.trigger <- struct{}{}
	return nil
}

// Wait blocks until the active round completes and rearms the request.
// After an error (for example ErrClassProcFailed when a member died
// mid-round) the request is back in the inactive state: it may be started
// again or freed, and never leaves outstanding internal receives behind.
func (p *PersistentColl) Wait() error {
	p.mu.Lock()
	if p.freed {
		p.mu.Unlock()
		return p.c.errh.invoke(ErrCollFreed)
	}
	if !p.active {
		p.mu.Unlock()
		return p.c.errh.invoke(ErrCollNotStarted)
	}
	p.mu.Unlock()
	err := <-p.done
	p.mu.Lock()
	p.active = false
	p.mu.Unlock()
	return p.c.errh.invoke(err)
}

// Test polls the active round, rearming the request on completion.
func (p *PersistentColl) Test() (bool, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.freed {
		return false, p.c.errh.invoke(ErrCollFreed)
	}
	if !p.active {
		return false, p.c.errh.invoke(ErrCollNotStarted)
	}
	select {
	case err := <-p.done:
		p.active = false
		return true, p.c.errh.invoke(err)
	default:
		return false, nil
	}
}

// Free releases the request and its tag window (MPI_Request_free). Freeing
// an active round is an error; Free calls must mirror the Init order on
// every member so the recycled windows keep lining up.
func (p *PersistentColl) Free() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.freed {
		return p.c.errh.invoke(ErrCollFreed)
	}
	if p.active {
		return p.c.errh.invoke(ErrActive)
	}
	p.freed = true
	close(p.trigger)
	p.c.ch.ReleasePersistentWindow(p.baseTag)
	return nil
}

// Algorithm returns the algorithm the schedule was compiled for.
func (p *PersistentColl) Algorithm() string { return p.ex.Algorithm() }

// Steps returns the compiled schedule's step count.
func (p *PersistentColl) Steps() int { return p.ex.Steps() }

// BarrierInit prepares a persistent barrier (MPI_Barrier_init).
func (c *Comm) BarrierInit() (*PersistentColl, error) {
	return c.collInit(func(m *coll.Module, baseTag int) (*coll.Exec, error) {
		return m.PrepareBarrier(baseTag)
	})
}

// BcastInit prepares a persistent broadcast of buf from root
// (MPI_Bcast_init). buf stays bound until Free.
func (c *Comm) BcastInit(buf []byte, root int) (*PersistentColl, error) {
	if root < 0 || root >= c.Size() {
		return nil, c.errh.invoke(fmt.Errorf("mpi: bcast root %d out of range", root))
	}
	return c.collInit(func(m *coll.Module, baseTag int) (*coll.Exec, error) {
		return m.PrepareBcast(buf, root, baseTag)
	})
}

// ReduceInit prepares a persistent reduction to root (MPI_Reduce_init).
func (c *Comm) ReduceInit(sendBuf, recvBuf []byte, count int, dt Datatype, op Op, root int) (*PersistentColl, error) {
	if root < 0 || root >= c.Size() {
		return nil, c.errh.invoke(fmt.Errorf("mpi: reduce root %d out of range", root))
	}
	nbytes := count * dt.Size()
	if len(sendBuf) < nbytes {
		return nil, c.errh.invoke(fmt.Errorf("mpi: reduce send buffer %d < %d bytes", len(sendBuf), nbytes))
	}
	if c.Rank() == root && len(recvBuf) < nbytes {
		return nil, c.errh.invoke(fmt.Errorf("mpi: reduce recv buffer %d < %d bytes", len(recvBuf), nbytes))
	}
	return c.collInit(func(m *coll.Module, baseTag int) (*coll.Exec, error) {
		return m.PrepareReduce(sendBuf, recvBuf, count, dt.Size(), builtinReducer(op, dt), true, root, baseTag)
	})
}

// AllreduceInit prepares a persistent allreduce (MPI_Allreduce_init).
func (c *Comm) AllreduceInit(sendBuf, recvBuf []byte, count int, dt Datatype, op Op) (*PersistentColl, error) {
	nbytes := count * dt.Size()
	if len(sendBuf) < nbytes {
		return nil, c.errh.invoke(fmt.Errorf("mpi: allreduce send buffer %d < %d bytes", len(sendBuf), nbytes))
	}
	if len(recvBuf) < nbytes {
		return nil, c.errh.invoke(fmt.Errorf("mpi: allreduce recv buffer %d < %d bytes", len(recvBuf), nbytes))
	}
	return c.collInit(func(m *coll.Module, baseTag int) (*coll.Exec, error) {
		return m.PrepareAllreduce(sendBuf, recvBuf, count, dt.Size(), builtinReducer(op, dt), true, baseTag)
	})
}

// AllgatherInit prepares a persistent allgather (MPI_Allgather_init).
func (c *Comm) AllgatherInit(sendBuf, recvBuf []byte) (*PersistentColl, error) {
	size := c.Size()
	blk := len(sendBuf)
	if len(recvBuf) < size*blk {
		return nil, c.errh.invoke(fmt.Errorf("mpi: allgather recv buffer %d < %d bytes", len(recvBuf), size*blk))
	}
	return c.collInit(func(m *coll.Module, baseTag int) (*coll.Exec, error) {
		return m.PrepareAllgather(sendBuf, recvBuf[:size*blk], baseTag)
	})
}

// AlltoallInit prepares a persistent alltoall (MPI_Alltoall_init).
func (c *Comm) AlltoallInit(sendBuf, recvBuf []byte) (*PersistentColl, error) {
	size := c.Size()
	if len(sendBuf)%size != 0 {
		return nil, c.errh.invoke(fmt.Errorf("mpi: alltoall send buffer %d not divisible by %d", len(sendBuf), size))
	}
	blk := len(sendBuf) / size
	if len(recvBuf) < size*blk {
		return nil, c.errh.invoke(fmt.Errorf("mpi: alltoall recv buffer %d < %d bytes", len(recvBuf), size*blk))
	}
	return c.collInit(func(m *coll.Module, baseTag int) (*coll.Exec, error) {
		return m.PrepareAlltoall(sendBuf, recvBuf[:size*blk], baseTag)
	})
}
