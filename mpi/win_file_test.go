package mpi_test

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"gompi/mpi"
)

// withSessionComm runs body with a session and a world-spanning
// sessions-model communicator.
func withSession(t *testing.T, nodes, ppn int, body func(p *mpi.Process, s *mpi.Session, g *mpi.Group) error) {
	t.Helper()
	run(t, nodes, ppn, exCfg(), func(p *mpi.Process) error {
		sess, err := p.SessionInit(nil, nil)
		if err != nil {
			return err
		}
		grp, err := sess.GroupFromPset(mpi.PsetWorld)
		if err != nil {
			return err
		}
		if err := body(p, sess, grp); err != nil {
			return err
		}
		return sess.Finalize()
	})
}

func TestWinCreateFromGroupPutGet(t *testing.T) {
	withSession(t, 2, 2, func(p *mpi.Process, s *mpi.Session, g *mpi.Group) error {
		win, err := s.WinCreateFromGroup(g, "t1", 64)
		if err != nil {
			return err
		}
		me := win.Comm().Rank()
		n := win.Comm().Size()
		// Everyone puts its rank byte into the right neighbour's slot 0.
		right := (me + 1) % n
		if err := win.Put(right, 0, []byte{byte(me)}); err != nil {
			return err
		}
		if err := win.Fence(); err != nil {
			return err
		}
		left := (me - 1 + n) % n
		if win.Local()[0] != byte(left) {
			return fmt.Errorf("local[0] = %d, want %d", win.Local()[0], left)
		}
		// Get the left neighbour's slot 0 (holds its left neighbour's rank).
		var got [1]byte
		if err := win.Get(left, 0, got[:]); err != nil {
			return err
		}
		if got[0] != byte((left-1+n)%n) {
			return fmt.Errorf("get = %d", got[0])
		}
		if err := win.Fence(); err != nil {
			return err
		}
		return win.Free()
	})
}

func TestWinAccumulate(t *testing.T) {
	withSession(t, 1, 4, func(p *mpi.Process, s *mpi.Session, g *mpi.Group) error {
		win, err := s.WinCreateFromGroup(g, "acc", 8)
		if err != nil {
			return err
		}
		// All ranks accumulate their rank+1 into rank 0's counter.
		one := mpi.PackInt64s([]int64{int64(win.Comm().Rank() + 1)})
		if err := win.Accumulate(0, 0, one, mpi.OpSum); err != nil {
			return err
		}
		if err := win.Fence(); err != nil {
			return err
		}
		if win.Comm().Rank() == 0 {
			got := mpi.UnpackInt64s(win.Local())[0]
			if got != 10 { // 1+2+3+4
				return fmt.Errorf("accumulated = %d, want 10", got)
			}
		}
		return win.Free()
	})
}

func TestWinSelfOpsAndValidation(t *testing.T) {
	withSession(t, 1, 2, func(p *mpi.Process, s *mpi.Session, g *mpi.Group) error {
		win, err := s.WinCreateFromGroup(g, "self", 16)
		if err != nil {
			return err
		}
		me := win.Comm().Rank()
		if err := win.Put(me, 4, []byte("ab")); err != nil {
			return err
		}
		var buf [2]byte
		if err := win.Get(me, 4, buf[:]); err != nil {
			return err
		}
		if string(buf[:]) != "ab" {
			return fmt.Errorf("self get = %q", buf)
		}
		if err := win.Put(99, 0, nil); err == nil {
			return fmt.Errorf("put to invalid target should fail")
		}
		if err := win.Put(me, -1, nil); err == nil {
			return fmt.Errorf("negative offset should fail")
		}
		if err := win.Fence(); err != nil {
			return err
		}
		if err := win.Free(); err != nil {
			return err
		}
		if err := win.Put(0, 0, []byte{1}); !errors.Is(err, mpi.ErrWinFreed) {
			return fmt.Errorf("put after free: %v", err)
		}
		return nil
	})
}

func TestFileOpenFromGroupReadWrite(t *testing.T) {
	withSession(t, 2, 2, func(p *mpi.Process, s *mpi.Session, g *mpi.Group) error {
		f, err := s.FileOpenFromGroup(g, "t", "results.dat")
		if err != nil {
			return err
		}
		if f.Name() != "results.dat" {
			return fmt.Errorf("name = %q", f.Name())
		}
		me := p.JobRank()
		// Each rank writes an 8-byte record at its slot.
		rec := bytes.Repeat([]byte{byte('0' + me)}, 8)
		if err := f.WriteAt(me*8, rec); err != nil {
			return err
		}
		if err := f.Sync(); err != nil {
			return err
		}
		// Everyone reads the whole file and checks every record.
		size, err := f.Size()
		if err != nil {
			return err
		}
		if size != 32 {
			return fmt.Errorf("size = %d, want 32", size)
		}
		all := make([]byte, size)
		n, err := f.ReadAt(0, all)
		if err != nil {
			return err
		}
		if n != 32 {
			return fmt.Errorf("read %d bytes", n)
		}
		for r := 0; r < 4; r++ {
			for i := 0; i < 8; i++ {
				if all[r*8+i] != byte('0'+r) {
					return fmt.Errorf("record %d corrupt: %q", r, all[r*8:(r+1)*8])
				}
			}
		}
		// Read past EOF returns 0.
		if n, err := f.ReadAt(1000, make([]byte, 4)); err != nil || n != 0 {
			return fmt.Errorf("eof read = %d,%v", n, err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		if _, err := f.ReadAt(0, all); !errors.Is(err, mpi.ErrFileClosed) {
			return fmt.Errorf("read after close: %v", err)
		}
		return nil
	})
}
