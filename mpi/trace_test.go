package mpi_test

import (
	"fmt"
	"strings"
	"testing"

	"gompi/internal/core"
	"gompi/mpi"
)

func TestInstanceTraceRecordsLifecycle(t *testing.T) {
	cfg := core.Config{CIDMode: core.CIDExtended, Trace: true}
	run(t, 1, 2, cfg, func(p *mpi.Process) error {
		sess, err := p.SessionInit(nil, nil)
		if err != nil {
			return err
		}
		grp, err := sess.GroupFromPset(mpi.PsetWorld)
		if err != nil {
			return err
		}
		comm, err := sess.CommCreateFromGroup(grp, "traced", nil, nil)
		if err != nil {
			return err
		}
		if err := comm.Free(); err != nil {
			return err
		}
		if err := sess.Finalize(); err != nil {
			return err
		}
		evs := p.Instance().Trace().Events()
		var sawAcquire, sawComm, sawFinal bool
		for _, ev := range evs {
			switch {
			case ev.Layer == "core" && strings.Contains(ev.Msg, "acquired"):
				sawAcquire = true
			case ev.Layer == "comm" && strings.Contains(ev.Msg, `"traced"`):
				sawComm = true
			case ev.Layer == "core" && strings.Contains(ev.Msg, "finalized"):
				sawFinal = true
			}
		}
		if !sawAcquire || !sawComm || !sawFinal {
			return fmt.Errorf("trace missing events (acquire=%v comm=%v final=%v): %v",
				sawAcquire, sawComm, sawFinal, evs)
		}
		return nil
	})
}

func TestTraceOffByDefault(t *testing.T) {
	run(t, 1, 1, exCfg(), func(p *mpi.Process) error {
		sess, err := p.SessionInit(nil, nil)
		if err != nil {
			return err
		}
		defer sess.Finalize()
		if n := len(p.Instance().Trace().Events()); n != 0 {
			return fmt.Errorf("trace recorded %d events while disabled", n)
		}
		return nil
	})
}
