package mpi_test

import (
	"fmt"
	"strings"
	"testing"

	"gompi/internal/core"
	"gompi/mpi"
)

func TestInstanceTraceRecordsLifecycle(t *testing.T) {
	cfg := core.Config{CIDMode: core.CIDExtended, Trace: true}
	run(t, 1, 2, cfg, func(p *mpi.Process) error {
		sess, err := p.SessionInit(nil, nil)
		if err != nil {
			return err
		}
		grp, err := sess.GroupFromPset(mpi.PsetWorld)
		if err != nil {
			return err
		}
		comm, err := sess.CommCreateFromGroup(grp, "traced", nil, nil)
		if err != nil {
			return err
		}
		if err := comm.Free(); err != nil {
			return err
		}
		if err := sess.Finalize(); err != nil {
			return err
		}
		evs := p.Instance().Trace().Events()
		var sawAcquire, sawComm, sawFinal bool
		for _, ev := range evs {
			switch {
			case ev.Layer == "core" && strings.Contains(ev.Msg, "acquired"):
				sawAcquire = true
			case ev.Layer == "comm" && strings.Contains(ev.Msg, `"traced"`):
				sawComm = true
			case ev.Layer == "core" && strings.Contains(ev.Msg, "finalized"):
				sawFinal = true
			}
		}
		if !sawAcquire || !sawComm || !sawFinal {
			return fmt.Errorf("trace missing events (acquire=%v comm=%v final=%v): %v",
				sawAcquire, sawComm, sawFinal, evs)
		}
		return nil
	})
}

func TestTraceOffByDefault(t *testing.T) {
	run(t, 1, 1, exCfg(), func(p *mpi.Process) error {
		sess, err := p.SessionInit(nil, nil)
		if err != nil {
			return err
		}
		defer sess.Finalize()
		if n := len(p.Instance().Trace().Events()); n != 0 {
			return fmt.Errorf("trace recorded %d events while disabled", n)
		}
		return nil
	})
}

// TestCollStatsCounters checks the schedule-era counters surfaced through
// CollStatsSnapshot: per-op executed step counts, schedule-cache hits for
// repeated same-shape dispatch, and persistent starts — and that the
// "coll" trace layer logs the compiled step count per dispatch.
func TestCollStatsCounters(t *testing.T) {
	cfg := core.Config{CIDMode: core.CIDExtended, Trace: true}
	run(t, 1, 4, cfg, func(p *mpi.Process) error {
		if err := p.Init(); err != nil {
			return err
		}
		defer p.Finalize()
		world := p.CommWorld()
		send := make([]byte, 64)
		recv := make([]byte, 64)
		const iters = 4
		for i := 0; i < iters; i++ {
			if err := world.Allreduce(send, recv, 8, mpi.Int64, mpi.OpSum); err != nil {
				return err
			}
		}
		req, err := world.AllreduceInit(send, recv, 8, mpi.Int64, mpi.OpSum)
		if err != nil {
			return err
		}
		if err := req.Start(); err != nil {
			return err
		}
		if err := req.Wait(); err != nil {
			return err
		}
		if err := req.Free(); err != nil {
			return err
		}

		st := p.CollStatsSnapshot()
		if st["steps/allreduce"] == 0 {
			return fmt.Errorf("steps/allreduce = 0: %v", st)
		}
		// Same shape dispatched iters times: all but the first compile hit
		// the per-module schedule cache.
		if got := st["schedule_cache_hits"]; got < iters-1 {
			return fmt.Errorf("schedule_cache_hits = %d, want >= %d: %v", got, iters-1, st)
		}
		if st["persistent_starts"] != 1 {
			return fmt.Errorf("persistent_starts = %d, want 1: %v", st["persistent_starts"], st)
		}

		var sawSteps bool
		for _, ev := range p.Instance().Trace().Events() {
			if ev.Layer == "coll" && strings.Contains(ev.Msg, "steps") {
				sawSteps = true
				break
			}
		}
		if !sawSteps {
			return fmt.Errorf("no coll trace event mentions the schedule step count")
		}
		return nil
	})
}
