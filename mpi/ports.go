package mpi

import (
	"fmt"
	"time"
)

// Dynamic process connection (MPI_Comm_accept / MPI_Comm_connect), built on
// the runtime's global name service. Two independently-started components —
// each with its own session and internal communicator, as in the paper's
// client/server discussion (§II-C) — rendezvous by port name and obtain an
// intercommunicator.
//
// Protocol: the connector publishes a connection request (its group plus a
// unique connection ID) under the port's request key and blocks on the
// per-connection accept key; the acceptor blocks on the request key,
// consumes it, and answers on the accept key. Sequential accept/connect
// pairs on one port work indefinitely; CONCURRENT connects to one port
// must be serialized by the application (a second simultaneous request
// overwrites the first).

func portRequestKey(port string) string { return "mpi.port/" + port + "/request" }
func portAcceptKey(port, connID string) string {
	return "mpi.port/" + port + "/accept/" + connID
}

// rendezvousPayload encodes a connection ID plus a rank list.
func encodeRendezvous(connID string, ranks []int) []byte {
	vals := make([]int64, 0, len(ranks)+1)
	vals = append(vals, int64(len(connID)))
	for _, r := range ranks {
		vals = append(vals, int64(r))
	}
	return append(PackInt64s(vals), connID...)
}

func decodeRendezvous(b []byte) (connID string, ranks []int, err error) {
	if len(b) < 8 {
		return "", nil, fmt.Errorf("mpi: corrupt rendezvous payload (%d bytes)", len(b))
	}
	idLen := int(UnpackInt64s(b[:8])[0])
	if idLen < 0 || len(b) < 8+idLen {
		return "", nil, fmt.Errorf("mpi: corrupt rendezvous payload (id length %d)", idLen)
	}
	body := b[8 : len(b)-idLen]
	for _, v := range UnpackInt64s(body) {
		ranks = append(ranks, int(v))
	}
	return string(b[len(b)-idLen:]), ranks, nil
}

// Accept waits for one Connect on the named port (MPI_Comm_accept).
// Collective over comm; root performs the rendezvous.
func (c *Comm) Accept(port string, root int, timeout time.Duration) (*InterComm, error) {
	return c.rendezvous(port, root, timeout, true)
}

// Connect connects to a port being accepted on (MPI_Comm_connect).
// Collective over comm. Connect may be called before the matching Accept;
// the request waits in the name service.
func (c *Comm) Connect(port string, root int, timeout time.Duration) (*InterComm, error) {
	return c.rendezvous(port, root, timeout, false)
}

func (c *Comm) rendezvous(port string, root int, timeout time.Duration, accepting bool) (*InterComm, error) {
	if err := c.checkLive(); err != nil {
		return nil, c.errh.invoke(err)
	}
	if root < 0 || root >= c.Size() {
		return nil, c.errh.invoke(fmt.Errorf("mpi: rendezvous root %d out of range", root))
	}
	if c.sess == nil {
		return nil, c.errh.invoke(fmt.Errorf("mpi: communicator has no session"))
	}
	if timeout <= 0 {
		timeout = c.p.inst.Timeout()
	}
	client := c.p.inst.Client()
	myRanks := c.group.GlobalRanks()

	// Root performs the name-service exchange; the peer group's ranks are
	// then broadcast within the local communicator.
	var peerBuf []byte
	var rendezvousErr error
	if c.Rank() == root {
		if accepting {
			if req, err := client.Lookup(portRequestKey(port), timeout); err != nil {
				rendezvousErr = fmt.Errorf("mpi: accept on %q: %w", port, err)
			} else if connID, peerRanks, err := decodeRendezvous(req); err != nil {
				rendezvousErr = err
			} else {
				_ = client.Unpublish(portRequestKey(port)) // consume the request
				if err := client.Publish(portAcceptKey(port, connID), encodeRendezvous(connID, myRanks)); err != nil {
					rendezvousErr = err
				} else {
					peerBuf = PackInt64s(toInt64(peerRanks))
				}
			}
		} else {
			connID := fmt.Sprintf("%d.%d", c.p.JobRank(), c.p.inst.NextCommSeq("port/"+port))
			if err := client.Publish(portRequestKey(port), encodeRendezvous(connID, myRanks)); err != nil {
				rendezvousErr = err
			} else if acc, err := client.Lookup(portAcceptKey(port, connID), timeout); err != nil {
				rendezvousErr = fmt.Errorf("mpi: connect to %q: %w", port, err)
			} else if _, peerRanks, err := decodeRendezvous(acc); err != nil {
				rendezvousErr = err
			} else {
				_ = client.Unpublish(portAcceptKey(port, connID))
				peerBuf = PackInt64s(toInt64(peerRanks))
			}
		}
	}

	// Broadcast outcome (length 0 signals failure) then the peer ranks.
	lenBuf := PackInt64s([]int64{int64(len(peerBuf))})
	if err := c.Bcast(lenBuf, root); err != nil {
		return nil, c.errh.invoke(err)
	}
	n := int(UnpackInt64s(lenBuf)[0])
	if n == 0 {
		if rendezvousErr == nil {
			rendezvousErr = fmt.Errorf("mpi: rendezvous on %q failed", port)
		}
		return nil, c.errh.invoke(rendezvousErr)
	}
	if c.Rank() != root {
		peerBuf = make([]byte, n)
	}
	if err := c.Bcast(peerBuf, root); err != nil {
		return nil, c.errh.invoke(err)
	}
	peerRanks := make([]int, n/8)
	for i, v := range UnpackInt64s(peerBuf) {
		peerRanks[i] = int(v)
	}

	local := newGroup(c.p, myRanks)
	remote := newGroup(c.p, peerRanks)
	return c.sess.InterCommCreateFromGroups(local, remote, "port/"+port, c.errh)
}

func toInt64(v []int) []int64 {
	out := make([]int64, len(v))
	for i, x := range v {
		out[i] = int64(x)
	}
	return out
}

// ClosePort clears any unconsumed connection request on the port
// (MPI_Close_port).
func (c *Comm) ClosePort(port string) error {
	return c.p.inst.Client().Unpublish(portRequestKey(port))
}
