package mpi_test

import (
	"fmt"
	"math/rand"
	"testing"

	"gompi/mpi"
)

// TestStressRandomizedWorkload drives a randomized schedule of communicator
// creation, collectives, point-to-point traffic, and frees across the whole
// stack. Every rank derives the identical schedule from a shared seed, so
// collective call order stays consistent while the operation mix varies.
func TestStressRandomizedWorkload(t *testing.T) {
	const iters = 40
	run(t, 2, 4, exCfg(), func(p *mpi.Process) error {
		sess, err := p.SessionInit(nil, mpi.ErrorsReturn())
		if err != nil {
			return err
		}
		defer sess.Finalize()
		worldGrp, err := sess.GroupFromPset(mpi.PsetWorld)
		if err != nil {
			return err
		}
		world, err := sess.CommCreateFromGroup(worldGrp, "stress", nil, nil)
		if err != nil {
			return err
		}
		defer world.Free()
		n := world.Size()
		me := world.Rank()

		rng := rand.New(rand.NewSource(20260706)) // identical at every rank
		for it := 0; it < iters; it++ {
			switch rng.Intn(5) {
			case 0: // subgroup communicator + allreduce + free
				k := 2 + rng.Intn(n-1)
				perm := rng.Perm(n)[:k]
				sub, err := worldGrp.Incl(perm)
				if err != nil {
					return err
				}
				if sub.Rank() == mpi.Undefined {
					continue
				}
				comm, err := world.CreateGroup(sub, it)
				if err != nil {
					return fmt.Errorf("iter %d create_group: %w", it, err)
				}
				want := int64(0)
				for _, r := range perm {
					want += int64(r)
				}
				got, err := comm.AllreduceInt64(int64(me), mpi.OpSum)
				if err != nil {
					return fmt.Errorf("iter %d allreduce: %w", it, err)
				}
				if got != want {
					return fmt.Errorf("iter %d: sum %d != %d", it, got, want)
				}
				if err := comm.Free(); err != nil {
					return err
				}
			case 1: // split by random color map
				colors := make([]int, n)
				for i := range colors {
					colors[i] = rng.Intn(2)
				}
				sub, err := world.Split(colors[me], me)
				if err != nil {
					return fmt.Errorf("iter %d split: %w", it, err)
				}
				if sub != nil {
					if err := sub.Barrier(); err != nil {
						return err
					}
					if err := sub.Free(); err != nil {
						return err
					}
				}
			case 2: // ring p2p with random payload size
				size := 1 + rng.Intn(6000) // spans eager and rendezvous
				right := (me + 1) % n
				left := (me - 1 + n) % n
				out := make([]byte, size)
				for i := range out {
					out[i] = byte(me + i)
				}
				in := make([]byte, size)
				if _, err := world.Sendrecv(out, right, it, in, left, it); err != nil {
					return fmt.Errorf("iter %d ring: %w", it, err)
				}
				for i := range in {
					if in[i] != byte(left+i) {
						return fmt.Errorf("iter %d: ring corrupt at %d", it, i)
					}
				}
			case 3: // broadcast from a random root
				root := rng.Intn(n)
				buf := make([]byte, 1+rng.Intn(100))
				if me == root {
					for i := range buf {
						buf[i] = byte(it)
					}
				}
				if err := world.Bcast(buf, root); err != nil {
					return fmt.Errorf("iter %d bcast: %w", it, err)
				}
				for i := range buf {
					if buf[i] != byte(it) {
						return fmt.Errorf("iter %d: bcast corrupt", it)
					}
				}
			case 4: // dup, use, free
				dup, err := world.Dup()
				if err != nil {
					return fmt.Errorf("iter %d dup: %w", it, err)
				}
				v, err := dup.AllreduceInt64(1, mpi.OpSum)
				if err != nil {
					return err
				}
				if v != int64(n) {
					return fmt.Errorf("iter %d: dup sum %d", it, v)
				}
				if err := dup.Free(); err != nil {
					return err
				}
			}
		}
		return world.Barrier()
	})
}

// TestStressSessionChurn cycles sessions rapidly while another session's
// communicator stays in use, validating isolation of lifecycles.
func TestStressSessionChurn(t *testing.T) {
	run(t, 1, 4, exCfg(), func(p *mpi.Process) error {
		stable, err := p.SessionInit(nil, mpi.ErrorsReturn())
		if err != nil {
			return err
		}
		defer stable.Finalize()
		grp, err := stable.GroupFromPset(mpi.PsetWorld)
		if err != nil {
			return err
		}
		comm, err := stable.CommCreateFromGroup(grp, "stable", nil, nil)
		if err != nil {
			return err
		}
		defer comm.Free()

		for i := 0; i < 10; i++ {
			s, err := p.SessionInit(nil, mpi.ErrorsReturn())
			if err != nil {
				return fmt.Errorf("churn %d: %w", i, err)
			}
			g, err := s.GroupFromPset(mpi.PsetShared)
			if err != nil {
				return err
			}
			c, err := s.CommCreateFromGroup(g, fmt.Sprintf("churn-%d", i), nil, nil)
			if err != nil {
				return err
			}
			if err := c.Barrier(); err != nil {
				return err
			}
			if err := c.Free(); err != nil {
				return err
			}
			if err := s.Finalize(); err != nil {
				return err
			}
			// The stable session's communicator still works.
			if _, err := comm.AllreduceInt64(1, mpi.OpSum); err != nil {
				return fmt.Errorf("churn %d broke stable comm: %w", i, err)
			}
		}
		return nil
	})
}
