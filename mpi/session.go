package mpi

import (
	"fmt"
	"sync"

	"gompi/internal/core"
	"gompi/internal/pmix"
)

// Predefined process-set names (paper §III-B6). PsetAlive is the dynamic
// pset: it resolves, fresh on every query, to the members of mpi://world not
// known to have terminated; "gompi://alive/<base>" derives the live subset
// of any other pset the same way.
const (
	PsetWorld  = core.PsetWorld
	PsetSelf   = core.PsetSelf
	PsetShared = core.PsetShared
	PsetAlive  = core.PsetAlive
)

// Session is an MPI session: a handle to an isolated stream of MPI usage
// within one process (paper §II). Sessions are created with
// Process.SessionInit, queried for process sets, and used — via
// GroupFromPset and CommCreateFromGroup — to build communicators without
// any global state such as MPI_COMM_WORLD.
type Session struct {
	p    *Process
	name string
	info *Info
	errh *Errhandler

	mu        sync.Mutex
	finalized bool
	liveComms int
}

// Name returns the session's name (for diagnostics).
func (s *Session) Name() string { return s.name }

// InfoKeyThreadLevel is the info key requesting a thread support level at
// SessionInit ("mpi_thread_support_level" in the proposal).
const InfoKeyThreadLevel = "mpi_thread_support_level"

// ThreadLevel returns the thread support level granted to this session.
// The Go implementation always grants what was requested, up to its
// natural MPI_THREAD_MULTIPLE.
func (s *Session) ThreadLevel() ThreadLevel {
	if v, ok := s.info.Get(InfoKeyThreadLevel); ok {
		switch v {
		case "MPI_THREAD_SINGLE":
			return ThreadSingle
		case "MPI_THREAD_FUNNELED":
			return ThreadFunneled
		case "MPI_THREAD_SERIALIZED":
			return ThreadSerialized
		}
	}
	return ThreadMultiple
}

// Info returns a copy of the info the session was created with
// (MPI_Session_get_info).
func (s *Session) Info() *Info { return s.info.Dup() }

// Errhandler returns the session's error handler.
func (s *Session) Errhandler() *Errhandler { return s.errh }

func (s *Session) checkLive() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.finalized {
		return ErrSessionFinalized
	}
	return nil
}

// NumPsets returns the number of process sets available to this session
// (MPI_Session_get_num_psets). The three built-in psets are always
// included.
func (s *Session) NumPsets() (int, error) {
	if err := s.checkLive(); err != nil {
		return 0, s.errh.invoke(err)
	}
	names, err := s.p.inst.PsetNames()
	if err != nil {
		return 0, s.errh.invoke(err)
	}
	return len(names), nil
}

// PsetName returns the n-th process-set name (MPI_Session_get_nth_pset).
func (s *Session) PsetName(n int) (string, error) {
	if err := s.checkLive(); err != nil {
		return "", s.errh.invoke(err)
	}
	names, err := s.p.inst.PsetNames()
	if err != nil {
		return "", s.errh.invoke(err)
	}
	if n < 0 || n >= len(names) {
		return "", s.errh.invoke(fmt.Errorf("mpi: pset index %d out of range [0,%d)", n, len(names)))
	}
	return names[n], nil
}

// PsetInfo returns an info object describing a pset, including its
// "mpi_size" key (MPI_Session_get_pset_info). Dynamic psets additionally
// carry "mpi_dyn" = "true" and "mpi_num_failed", the number of base-pset
// members currently known dead; both reflect the moment of the query.
func (s *Session) PsetInfo(name string) (*Info, error) {
	if err := s.checkLive(); err != nil {
		return nil, s.errh.invoke(err)
	}
	ranks, err := s.p.inst.ResolvePset(name)
	if err != nil {
		return nil, s.errh.invoke(err)
	}
	info := NewInfo()
	info.Set("mpi_size", fmt.Sprintf("%d", len(ranks)))
	info.Set("pset_name", name)
	if core.IsDynamicPset(name) {
		info.Set("mpi_dyn", "true")
		base, _ := core.DynamicPsetBase(name)
		baseRanks, err := s.p.inst.ResolvePset(base)
		if err != nil {
			return nil, s.errh.invoke(err)
		}
		info.Set("mpi_num_failed", fmt.Sprintf("%d", len(baseRanks)-len(ranks)))
	} else {
		info.Set("mpi_dyn", "false")
	}
	return info, nil
}

// PsetIsDynamic reports whether a pset name resolves dynamically — i.e.
// whether two GroupFromPset calls may legitimately see different members.
// Only the gompi://alive family is dynamic; every other pset is a fixed
// membership list.
func (s *Session) PsetIsDynamic(name string) bool { return core.IsDynamicPset(name) }

// PsetChange describes one membership change of a watched dynamic pset.
type PsetChange struct {
	Pset  string // the watched pset name
	Rank  int    // the global rank whose state changed
	Alive bool   // false: the rank died (pset shrank); true: it was respawned
}

// WatchPset registers fn to run whenever the membership of the named
// dynamic pset changes — a base-pset member terminates or is respawned. fn
// runs on the runtime's event-delivery goroutine and must not block; typical
// use is nudging a recovery loop through a channel. The returned id cancels
// the watch via UnwatchPset. Static psets never change, so watching one is
// an error.
func (s *Session) WatchPset(name string, fn func(PsetChange)) (int, error) {
	if err := s.checkLive(); err != nil {
		return 0, s.errh.invoke(err)
	}
	if !core.IsDynamicPset(name) {
		return 0, s.errh.invoke(fmt.Errorf("mpi: pset %q is static and never changes membership", name))
	}
	base, _ := core.DynamicPsetBase(name)
	ranks, err := s.p.inst.ResolvePset(base)
	if err != nil {
		return 0, s.errh.invoke(err)
	}
	members := make(map[int]bool, len(ranks))
	for _, r := range ranks {
		members[r] = true
	}
	id := s.p.inst.Client().RegisterEventHandler(
		[]pmix.EventCode{pmix.EventProcTerminated, pmix.EventProcRestarted},
		func(ev pmix.Event) {
			if !members[ev.Source.Rank] {
				return
			}
			fn(PsetChange{Pset: name, Rank: ev.Source.Rank, Alive: ev.Code == pmix.EventProcRestarted})
		})
	return id, nil
}

// UnwatchPset cancels a WatchPset registration. Calling it after the
// session (or the whole instance) finalized is a no-op: the runtime
// connection that held the handler is already gone.
func (s *Session) UnwatchPset(id int) {
	if c := s.p.inst.Client(); c != nil {
		c.DeregisterEventHandler(id)
	}
}

// GroupFromPset builds an MPI group from a process-set name
// (MPI_Group_from_session_pset). This is a local, light-weight operation:
// built-in psets resolve from launch information; runtime-defined psets
// query the resource manager.
func (s *Session) GroupFromPset(name string) (*Group, error) {
	if err := s.checkLive(); err != nil {
		return nil, s.errh.invoke(err)
	}
	ranks, err := s.p.inst.ResolvePset(name)
	if err != nil {
		return nil, s.errh.invoke(err)
	}
	return newGroup(s.p, ranks), nil
}

// CreatePset registers a user-defined process set with the runtime
// (collective over the group's members): afterwards any session in the job
// can resolve the name with GroupFromPset, discover it via NumPsets /
// PsetName, and build communicators from it. This is the dynamic pset
// creation direction the Sessions working group pursued after the paper
// ("additional implementation-specific or site-specific process set
// names", §I).
func (s *Session) CreatePset(name string, group *Group) error {
	if err := s.checkLive(); err != nil {
		return s.errh.invoke(err)
	}
	if name == "" || group.Size() == 0 {
		return s.errh.invoke(fmt.Errorf("mpi: pset needs a name and a non-empty group"))
	}
	if group.Rank() == Undefined {
		return s.errh.invoke(fmt.Errorf("mpi: calling process not in the pset group"))
	}
	// A PMIx group construct both synchronizes the members and registers
	// the name in the runtime's pset registry.
	_, err := s.p.inst.Client().GroupConstruct(name, group.GlobalRanks(), pmix.GroupOpts{
		AssignContextID: true,
		Timeout:         s.p.inst.Timeout(),
	})
	return s.errh.invoke(err)
}

// SurvivorGroup builds a group from a process set with all processes known
// to have terminated abnormally removed. It is the building block of the
// roll-forward recovery pattern the paper sketches in §II-C: after a
// failure, the application finalizes its sessions, re-initializes MPI with
// a fresh session, and continues on whatever processes remain.
func (s *Session) SurvivorGroup(pset string) (*Group, error) {
	if err := s.checkLive(); err != nil {
		return nil, s.errh.invoke(err)
	}
	ranks, err := s.p.inst.ResolvePset(pset)
	if err != nil {
		return nil, s.errh.invoke(err)
	}
	client := s.p.inst.Client()
	dead := make(map[int]bool)
	for _, r := range client.TerminatedRanks() {
		dead[r] = true
	}
	var alive []int
	for _, r := range ranks {
		if !dead[r] {
			alive = append(alive, r)
		}
	}
	if len(alive) == 0 {
		// Classified as a process failure so recovery loops dispatching on
		// ErrorClassOf treat "everyone else is dead" like any other death.
		return nil, s.errh.invoke(fmt.Errorf("mpi: no survivors in pset %q: %w", pset, pmix.ErrTerminated))
	}
	return newGroup(s.p, alive), nil
}

// CommCreateFromGroup builds a communicator over the processes of group
// (MPI_Comm_create_from_group). The call is collective over the group's
// members, which must all supply the same tag; the runtime's PMIx group
// constructor provides the unique PGCID from which the communicator's
// exCID is formed (paper §III-B3). Requires the exCID CID mode.
func (s *Session) CommCreateFromGroup(group *Group, tag string, info *Info, errh *Errhandler) (*Comm, error) {
	if err := s.checkLive(); err != nil {
		return nil, s.errh.invoke(err)
	}
	if errh == nil {
		errh = s.errh
	}
	c, err := newCommFromGroup(s, group, tag, errh)
	if err != nil {
		return nil, s.errh.invoke(err)
	}
	// Collective-selection hints (gompi_coll_*) apply from the first
	// operation; an invalid hint fails the creation rather than silently
	// running a different algorithm than the caller asked for.
	if err := c.applyCollInfo(info); err != nil {
		c.freeLocal()
		return nil, s.errh.invoke(err)
	}
	return c, nil
}

func (s *Session) commCreated() {
	s.mu.Lock()
	s.liveComms++
	s.mu.Unlock()
}

func (s *Session) commFreed() {
	s.mu.Lock()
	if s.liveComms > 0 {
		s.liveComms--
	}
	s.mu.Unlock()
}

// LiveComms reports the number of communicators created from this session
// that have not been freed.
func (s *Session) LiveComms() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.liveComms
}

// Finalize releases the session (MPI_Session_finalize). All communicators
// (and objects derived from them) created from the session must be freed
// first. When the last live session of the process is finalized, the
// instance's cleanup callbacks run and MPI is fully torn down, ready to be
// initialized again (paper §III-B5).
func (s *Session) Finalize() error {
	s.mu.Lock()
	if s.finalized {
		s.mu.Unlock()
		return s.errh.invoke(ErrSessionFinalized)
	}
	if s.liveComms > 0 {
		n := s.liveComms
		s.mu.Unlock()
		return s.errh.invoke(fmt.Errorf("mpi: session %s has %d live communicators at finalize", s.name, n))
	}
	s.finalized = true
	s.mu.Unlock()
	return s.p.inst.Release()
}

// Finalized reports whether the session has been finalized.
func (s *Session) Finalized() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.finalized
}
