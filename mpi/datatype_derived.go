package mpi

import (
	"fmt"
)

// Derived datatypes (MPI_Type_contiguous / MPI_Type_vector): descriptions
// of non-contiguous memory layouts. In this library application buffers are
// []byte, so a derived datatype describes how to gather ("pack") bytes out
// of a buffer for sending and scatter ("unpack") them on receipt — exactly
// MPI_Pack/MPI_Unpack semantics. The canonical use is sending a column of
// a row-major grid.

// DerivedType describes a strided layout of a base datatype.
type DerivedType struct {
	base     Datatype
	count    int // number of blocks
	blocklen int // elements per block
	stride   int // elements between block starts
	name     string
}

// TypeContiguous builds a contiguous block of n base elements
// (MPI_Type_contiguous).
func TypeContiguous(n int, base Datatype) (*DerivedType, error) {
	if n <= 0 {
		return nil, fmt.Errorf("mpi: contiguous type needs positive count, got %d", n)
	}
	return &DerivedType{
		base: base, count: 1, blocklen: n, stride: n,
		name: fmt.Sprintf("contig(%d x %s)", n, base),
	}, nil
}

// TypeVector builds count blocks of blocklen base elements, with block
// starts stride elements apart (MPI_Type_vector). stride must be at least
// blocklen.
func TypeVector(count, blocklen, stride int, base Datatype) (*DerivedType, error) {
	if count <= 0 || blocklen <= 0 {
		return nil, fmt.Errorf("mpi: vector type needs positive count/blocklen (%d, %d)", count, blocklen)
	}
	if stride < blocklen {
		return nil, fmt.Errorf("mpi: vector stride %d < blocklen %d (overlap)", stride, blocklen)
	}
	return &DerivedType{
		base: base, count: count, blocklen: blocklen, stride: stride,
		name: fmt.Sprintf("vector(%dx%d/%d %s)", count, blocklen, stride, base),
	}, nil
}

// String returns the type's description.
func (d *DerivedType) String() string { return d.name }

// Size returns the number of payload bytes the type selects
// (MPI_Type_size).
func (d *DerivedType) Size() int { return d.count * d.blocklen * d.base.Size() }

// Extent returns the span in bytes the type covers in the source buffer
// (MPI_Type_get_extent): the distance from the first selected byte to one
// past the last.
func (d *DerivedType) Extent() int {
	if d.count == 0 {
		return 0
	}
	return ((d.count-1)*d.stride + d.blocklen) * d.base.Size()
}

// Pack gathers the selected bytes from src into a new contiguous buffer
// (MPI_Pack).
func (d *DerivedType) Pack(src []byte) ([]byte, error) {
	if len(src) < d.Extent() {
		return nil, fmt.Errorf("mpi: pack source %d bytes < extent %d", len(src), d.Extent())
	}
	es := d.base.Size()
	out := make([]byte, 0, d.Size())
	for b := 0; b < d.count; b++ {
		off := b * d.stride * es
		out = append(out, src[off:off+d.blocklen*es]...)
	}
	return out, nil
}

// Unpack scatters a contiguous buffer into dst according to the layout
// (MPI_Unpack).
func (d *DerivedType) Unpack(dst, packed []byte) error {
	if len(packed) < d.Size() {
		return fmt.Errorf("mpi: unpack input %d bytes < type size %d", len(packed), d.Size())
	}
	if len(dst) < d.Extent() {
		return fmt.Errorf("mpi: unpack destination %d bytes < extent %d", len(dst), d.Extent())
	}
	es := d.base.Size()
	for b := 0; b < d.count; b++ {
		off := b * d.stride * es
		copy(dst[off:off+d.blocklen*es], packed[b*d.blocklen*es:(b+1)*d.blocklen*es])
	}
	return nil
}

// SendTyped packs the layout out of buf and sends it (the typed
// MPI_Send). The receiver may use RecvTyped with a different layout of the
// same size, or a plain Recv of Size() bytes.
func (c *Comm) SendTyped(buf []byte, dt *DerivedType, dest, tag int) error {
	if err := c.checkP2P(dest, tag, false); err != nil {
		return c.errh.invoke(err)
	}
	packed, err := dt.Pack(buf)
	if err != nil {
		return c.errh.invoke(err)
	}
	return c.errh.invoke(c.ch.Send(dest, tag, packed))
}

// RecvTyped receives into the layout described by dt (the typed MPI_Recv).
func (c *Comm) RecvTyped(buf []byte, dt *DerivedType, src, tag int) (Status, error) {
	if err := c.checkP2P(src, tag, true); err != nil {
		return Status{}, c.errh.invoke(err)
	}
	packed := make([]byte, dt.Size())
	st, err := c.ch.Recv(src, tag, packed)
	if err != nil {
		return fromPML(st), c.errh.invoke(err)
	}
	if st.Count != dt.Size() {
		return fromPML(st), c.errh.invoke(fmt.Errorf("mpi: typed recv got %d bytes, layout needs %d", st.Count, dt.Size()))
	}
	if err := dt.Unpack(buf, packed); err != nil {
		return fromPML(st), c.errh.invoke(err)
	}
	return fromPML(st), nil
}
