package mpi_test

import (
	"fmt"
	"testing"

	"gompi/mpi"
)

func TestSessionThreadLevel(t *testing.T) {
	run(t, 1, 1, exCfg(), func(p *mpi.Process) error {
		info := mpi.NewInfo()
		info.Set(mpi.InfoKeyThreadLevel, "MPI_THREAD_FUNNELED")
		sess, err := p.SessionInit(info, nil)
		if err != nil {
			return err
		}
		defer sess.Finalize()
		if sess.ThreadLevel() != mpi.ThreadFunneled {
			return fmt.Errorf("level = %v", sess.ThreadLevel())
		}
		// No request: full thread support.
		s2, err := p.SessionInit(nil, nil)
		if err != nil {
			return err
		}
		defer s2.Finalize()
		if s2.ThreadLevel() != mpi.ThreadMultiple {
			return fmt.Errorf("default level = %v", s2.ThreadLevel())
		}
		return nil
	})
}

func TestTestanyAndTestsome(t *testing.T) {
	withWorld(t, 1, 2, exCfg(), func(p *mpi.Process, world *mpi.Comm) error {
		if world.Rank() == 1 {
			if err := world.Send([]byte{1}, 0, 1); err != nil {
				return err
			}
			if err := world.Send([]byte{2}, 0, 2); err != nil {
				return err
			}
			// Tag 3 is never sent.
			return world.Barrier()
		}
		b1, b2, b3 := make([]byte, 1), make([]byte, 1), make([]byte, 1)
		reqs := []mpi.Request{world.Irecv(b1, 1, 1), world.Irecv(b2, 1, 2), world.Irecv(b3, 1, 3)}
		// Eventually tags 1 and 2 complete; tag 3 never does.
		var got []int
		for len(got) < 2 {
			var err error
			got, err = mpi.Testsome(reqs)
			if err != nil {
				return err
			}
		}
		if got[0] != 0 || got[1] != 1 {
			return fmt.Errorf("testsome = %v", got)
		}
		i, _, ok, err := mpi.Testany(reqs)
		if err != nil || !ok || (i != 0 && i != 1) {
			return fmt.Errorf("testany = %d,%v,%v", i, ok, err)
		}
		// All-nil and never-completing entries.
		if i, _, ok, _ := mpi.Testany([]mpi.Request{nil}); ok || i != mpi.Undefined {
			return fmt.Errorf("nil testany = %d,%v", i, ok)
		}
		return world.Barrier()
	})
}
