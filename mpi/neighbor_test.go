package mpi_test

import (
	"fmt"
	"testing"

	"gompi/mpi"
)

func TestNeighborAllgather1DPeriodic(t *testing.T) {
	withWorld(t, 1, 4, exCfg(), func(p *mpi.Process, world *mpi.Comm) error {
		cart, err := world.CartCreate([]int{4}, []bool{true}, false)
		if err != nil {
			return err
		}
		defer cart.Free()
		me := cart.Rank()
		mine := []byte{byte(100 + me)}
		recv := []byte{255, 255}
		if err := cart.NeighborAllgather(mine, recv); err != nil {
			return err
		}
		left := (me + 3) % 4
		right := (me + 1) % 4
		if recv[0] != byte(100+left) || recv[1] != byte(100+right) {
			return fmt.Errorf("rank %d: recv = %v, want [%d %d]", me, recv, 100+left, 100+right)
		}
		return nil
	})
}

func TestNeighborAllgatherNonPeriodicEdges(t *testing.T) {
	withWorld(t, 1, 4, exCfg(), func(p *mpi.Process, world *mpi.Comm) error {
		cart, err := world.CartCreate([]int{4}, []bool{false}, false)
		if err != nil {
			return err
		}
		defer cart.Free()
		me := cart.Rank()
		mine := []byte{byte(me)}
		recv := []byte{200, 200}
		if err := cart.NeighborAllgather(mine, recv); err != nil {
			return err
		}
		if me == 0 {
			if recv[0] != 200 { // no left neighbour: untouched
				return fmt.Errorf("rank 0: left slot = %d", recv[0])
			}
			if recv[1] != 1 {
				return fmt.Errorf("rank 0: right slot = %d", recv[1])
			}
		}
		if me == 3 {
			if recv[1] != 200 {
				return fmt.Errorf("rank 3: right slot = %d", recv[1])
			}
			if recv[0] != 2 {
				return fmt.Errorf("rank 3: left slot = %d", recv[0])
			}
		}
		return nil
	})
}

func TestNeighborAlltoall2D(t *testing.T) {
	withWorld(t, 2, 3, exCfg(), func(p *mpi.Process, world *mpi.Comm) error {
		cart, err := world.CartCreate([]int{2, 3}, []bool{true, true}, false)
		if err != nil {
			return err
		}
		defer cart.Free()
		me := cart.Rank()
		n := cart.NeighborCount() // 4
		send := make([]byte, n)
		for i := range send {
			send[i] = byte(me*10 + i) // block i goes to neighbour slot i
		}
		recv := make([]byte, n)
		if err := cart.NeighborAlltoall(send, recv); err != nil {
			return err
		}
		neighbors, err := cart.Neighbors()
		if err != nil {
			return err
		}
		for i, nb := range neighbors {
			if nb == mpi.ProcNull {
				continue
			}
			// What I received in slot i is the block the neighbour sent
			// toward me, i.e. its block for its opposite slot.
			want := byte(nb*10 + (i ^ 1))
			if recv[i] != want {
				return fmt.Errorf("rank %d slot %d: got %d, want %d (from %d)", me, i, recv[i], want, nb)
			}
		}
		return nil
	})
}

func TestNeighborAlltoallTwoWidePeriodic(t *testing.T) {
	// Both neighbours in a 2-wide periodic dimension are the same rank;
	// slot-tagged matching must still route blocks correctly.
	withWorld(t, 1, 2, exCfg(), func(p *mpi.Process, world *mpi.Comm) error {
		cart, err := world.CartCreate([]int{2}, []bool{true}, false)
		if err != nil {
			return err
		}
		defer cart.Free()
		me := cart.Rank()
		peer := 1 - me
		send := []byte{byte(me*10 + 0), byte(me*10 + 1)}
		recv := []byte{99, 99}
		if err := cart.NeighborAlltoall(send, recv); err != nil {
			return err
		}
		// Slot 0 (my -1 neighbour) holds the peer's +1-direction block
		// (its slot 1); slot 1 holds its slot-0 block.
		if recv[0] != byte(peer*10+1) || recv[1] != byte(peer*10+0) {
			return fmt.Errorf("rank %d: recv = %v", me, recv)
		}
		return nil
	})
}

func TestNeighborValidation(t *testing.T) {
	withWorld(t, 1, 4, exCfg(), func(p *mpi.Process, world *mpi.Comm) error {
		cart, err := world.CartCreate([]int{4}, []bool{true}, false)
		if err != nil {
			return err
		}
		defer cart.Free()
		if err := cart.NeighborAllgather([]byte{1}, []byte{0}); err == nil {
			return fmt.Errorf("short allgather recv accepted")
		}
		if err := cart.NeighborAlltoall([]byte{1, 2, 3}, make([]byte, 4)); err == nil {
			return fmt.Errorf("non-divisible alltoall send accepted")
		}
		return nil
	})
}
