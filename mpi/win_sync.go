package mpi

import (
	"fmt"
	"sync"
)

// Generalized active-target (PSCW: MPI_Win_post/start/complete/wait) and
// passive-target (MPI_Win_lock/unlock) synchronization for RMA windows.
// Operations complete synchronously at the target in this implementation,
// so the epochs reduce to clean notification protocols.

const (
	winTagPost     = -1000017
	winTagComplete = -1000019
	winTagLockReq  = -1000021
	winTagLockGrat = -1000023
	winTagUnlock   = -1000029
)

// Lock types for passive-target epochs.
const (
	// LockExclusive grants one origin at a time (MPI_LOCK_EXCLUSIVE).
	LockExclusive = 1
	// LockShared admits concurrent readers (MPI_LOCK_SHARED).
	LockShared = 2
)

// winSync holds the PSCW / lock state of a window; created lazily.
type winSync struct {
	mu        sync.Mutex
	lockState int   // 0 free, -1 exclusive, >0 shared holders
	waiting   []int // queued lock requesters (comm ranks)
	waitType  []int // their lock types
}

func (w *Win) sync() *winSync {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.syncState == nil {
		w.syncState = &winSync{}
	}
	return w.syncState
}

// Post opens an exposure epoch for the origins in group (MPI_Win_post):
// each origin's matching Start unblocks once the post notification
// arrives.
func (w *Win) Post(group *Group) error {
	if err := w.epochCheck(); err != nil {
		return err
	}
	for _, gr := range group.ranks {
		cr, err := w.commRankOf(gr)
		if err != nil {
			return err
		}
		if err := w.comm.ch.Send(cr, winTagPost, []byte{1}); err != nil {
			return err
		}
	}
	return nil
}

// Start opens an access epoch to the targets in group (MPI_Win_start),
// blocking until every target has posted.
func (w *Win) Start(group *Group) error {
	if err := w.epochCheck(); err != nil {
		return err
	}
	var token [1]byte
	for _, gr := range group.ranks {
		cr, err := w.commRankOf(gr)
		if err != nil {
			return err
		}
		if _, err := w.comm.ch.Recv(cr, winTagPost, token[:]); err != nil {
			return err
		}
	}
	w.mu.Lock()
	w.accessGroup = group.GlobalRanks()
	w.mu.Unlock()
	return nil
}

// Complete closes the access epoch opened by Start (MPI_Win_complete):
// all operations issued during the epoch are complete at their targets
// (they complete synchronously here), and each target is notified.
func (w *Win) Complete() error {
	if err := w.epochCheck(); err != nil {
		return err
	}
	w.mu.Lock()
	group := w.accessGroup
	w.accessGroup = nil
	w.mu.Unlock()
	if group == nil {
		return fmt.Errorf("mpi: Complete without matching Start")
	}
	for _, gr := range group {
		cr, err := w.commRankOf(gr)
		if err != nil {
			return err
		}
		if err := w.comm.ch.Send(cr, winTagComplete, []byte{1}); err != nil {
			return err
		}
	}
	return nil
}

// WaitEpoch closes the exposure epoch opened by Post (MPI_Win_wait),
// blocking until every origin in group has called Complete.
func (w *Win) WaitEpoch(group *Group) error {
	if err := w.epochCheck(); err != nil {
		return err
	}
	var token [1]byte
	for _, gr := range group.ranks {
		cr, err := w.commRankOf(gr)
		if err != nil {
			return err
		}
		if _, err := w.comm.ch.Recv(cr, winTagComplete, token[:]); err != nil {
			return err
		}
	}
	return nil
}

func (w *Win) epochCheck() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.freed {
		return ErrWinFreed
	}
	return nil
}

// commRankOf translates a global rank into the window comm's rank space.
func (w *Win) commRankOf(globalRank int) (int, error) {
	for i, r := range w.comm.group.ranks {
		if r == globalRank {
			return i, nil
		}
	}
	return 0, fmt.Errorf("mpi: rank %d not in window", globalRank)
}

// Lock opens a passive-target epoch on target (MPI_Win_lock). lockType is
// LockExclusive or LockShared. Locking the local process is allowed.
func (w *Win) Lock(lockType, target int) error {
	if err := w.checkTarget(target, 0, 0); err != nil {
		return err
	}
	if lockType != LockExclusive && lockType != LockShared {
		return fmt.Errorf("mpi: bad lock type %d", lockType)
	}
	var req [2]byte
	req[0] = byte(lockType)
	req[1] = byte(w.comm.Rank())
	if err := w.comm.ch.Send(target, winTagLockReq, req[:]); err != nil {
		return err
	}
	var grant [1]byte
	_, err := w.comm.ch.Recv(target, winTagLockGrat, grant[:])
	return err
}

// Unlock closes the passive-target epoch (MPI_Win_unlock). All operations
// issued under the lock are complete at the target when it returns (they
// complete synchronously here).
func (w *Win) Unlock(target int) error {
	if err := w.checkTarget(target, 0, 0); err != nil {
		return err
	}
	var req [1]byte
	req[0] = byte(w.comm.Rank())
	return w.comm.ch.Send(target, winTagUnlock, req[:])
}

// lockService runs at every window member, granting lock requests in
// arrival order with shared-reader admission.
func (w *Win) lockService() {
	s := w.sync()
	buf := make([]byte, 2)
	for {
		st, err := w.comm.ch.Recv(AnySource, winTagLockReq, buf)
		if err != nil {
			return
		}
		lockType := int(buf[0])
		origin := st.Source
		s.mu.Lock()
		grantNow := false
		switch {
		case s.lockState == 0:
			grantNow = true
		case s.lockState > 0 && lockType == LockShared && len(s.waiting) == 0:
			// Admit additional readers only while no writer queues.
			grantNow = true
		}
		if grantNow {
			if lockType == LockExclusive {
				s.lockState = -1
			} else {
				s.lockState++
			}
			s.mu.Unlock()
			_ = w.comm.ch.Send(origin, winTagLockGrat, []byte{1})
			continue
		}
		s.waiting = append(s.waiting, origin)
		s.waitType = append(s.waitType, lockType)
		s.mu.Unlock()
	}
}

// unlockService processes unlock messages and grants queued requests.
func (w *Win) unlockService() {
	s := w.sync()
	buf := make([]byte, 1)
	for {
		if _, err := w.comm.ch.Recv(AnySource, winTagUnlock, buf); err != nil {
			return
		}
		var grants []int
		s.mu.Lock()
		if s.lockState == -1 {
			s.lockState = 0
		} else if s.lockState > 0 {
			s.lockState--
		}
		for s.lockState >= 0 && len(s.waiting) > 0 {
			next, nextType := s.waiting[0], s.waitType[0]
			if nextType == LockExclusive {
				if s.lockState != 0 {
					break
				}
				s.lockState = -1
			} else {
				s.lockState++
			}
			s.waiting = s.waiting[1:]
			s.waitType = s.waitType[1:]
			grants = append(grants, next)
			if s.lockState == -1 {
				break
			}
		}
		s.mu.Unlock()
		for _, origin := range grants {
			_ = w.comm.ch.Send(origin, winTagLockGrat, []byte{1})
		}
	}
}
