package mpi

import (
	"fmt"
)

// Neighborhood collectives on Cartesian topologies (MPI_Neighbor_*): each
// process exchanges with its 2*ndims topological neighbours, the
// communication pattern of structured halo exchanges. Neighbour order
// follows MPI: for each dimension, the negative-displacement source first,
// then the positive-displacement destination.

// NeighborCount returns the number of neighbour slots (2 per dimension;
// off-grid neighbours in non-periodic dimensions still occupy a slot, as
// MPI_PROC_NULL does).
func (c *CartComm) NeighborCount() int { return 2 * len(c.dims) }

// Neighbors lists the neighbour ranks in MPI order; ProcNull marks
// off-grid slots.
func (c *CartComm) Neighbors() ([]int, error) {
	out := make([]int, 0, c.NeighborCount())
	for dim := range c.dims {
		src, dst, err := c.Shift(dim, 1)
		if err != nil {
			return nil, err
		}
		out = append(out, src, dst)
	}
	return out, nil
}

// NeighborAllgather gathers sendBuf from every neighbour
// (MPI_Neighbor_allgather): recvBuf holds NeighborCount() blocks of
// len(sendBuf) bytes, in neighbour order; blocks for ProcNull slots are
// left untouched.
func (c *CartComm) NeighborAllgather(sendBuf, recvBuf []byte) error {
	if err := c.checkLive(); err != nil {
		return c.errh.invoke(err)
	}
	blk := len(sendBuf)
	n := c.NeighborCount()
	if len(recvBuf) < n*blk {
		return c.errh.invoke(fmt.Errorf("mpi: neighbor_allgather recv buffer %d < %d bytes", len(recvBuf), n*blk))
	}
	neighbors, err := c.Neighbors()
	if err != nil {
		return c.errh.invoke(err)
	}
	tag := c.nextCollTag()
	// Post all receives, then all sends; symmetric neighbour relations
	// guarantee a matching send for every posted receive.
	var reqs []Request
	for i, nb := range neighbors {
		if nb == ProcNull {
			continue
		}
		reqs = append(reqs, pmlRequest{c.ch.Irecv(nb, tag, recvBuf[i*blk:(i+1)*blk])})
	}
	for _, nb := range neighbors {
		if nb == ProcNull {
			continue
		}
		if err := c.sendT(sendBuf, nb, tag); err != nil {
			return c.errh.invoke(err)
		}
	}
	return c.errh.invoke(WaitAll(reqs...))
}

// NeighborAlltoall sends block i of sendBuf to neighbour i and receives
// block i of recvBuf from neighbour i (MPI_Neighbor_alltoall). Both
// buffers hold NeighborCount() equal blocks.
func (c *CartComm) NeighborAlltoall(sendBuf, recvBuf []byte) error {
	if err := c.checkLive(); err != nil {
		return c.errh.invoke(err)
	}
	n := c.NeighborCount()
	if len(sendBuf)%n != 0 {
		return c.errh.invoke(fmt.Errorf("mpi: neighbor_alltoall send buffer %d not divisible by %d", len(sendBuf), n))
	}
	blk := len(sendBuf) / n
	if len(recvBuf) < n*blk {
		return c.errh.invoke(fmt.Errorf("mpi: neighbor_alltoall recv buffer %d < %d bytes", len(recvBuf), n*blk))
	}
	neighbors, err := c.Neighbors()
	if err != nil {
		return c.errh.invoke(err)
	}
	tag := c.nextCollTag()
	// A message to the neighbour in slot i arrives at that neighbour's
	// OPPOSITE slot: slot pairs (2d, 2d+1) swap. Tag by the receiver's
	// slot so a rank adjacent to one peer in several dimensions (tiny
	// periodic grids) still matches blocks correctly.
	var reqs []Request
	for i, nb := range neighbors {
		if nb == ProcNull {
			continue
		}
		reqs = append(reqs, pmlRequest{c.ch.Irecv(nb, tag-i, recvBuf[i*blk:(i+1)*blk])})
	}
	for i, nb := range neighbors {
		if nb == ProcNull {
			continue
		}
		opposite := i ^ 1
		if err := c.sendT(sendBuf[i*blk:(i+1)*blk], nb, tag-opposite); err != nil {
			return c.errh.invoke(err)
		}
	}
	return c.errh.invoke(WaitAll(reqs...))
}
