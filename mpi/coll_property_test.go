package mpi_test

import (
	"fmt"
	"testing"

	"gompi/internal/coll"
	"gompi/internal/core"
	"gompi/mpi"
)

// Property tests: every registered algorithm of every collective operation
// must agree with a naive per-rank reference, end to end through the PML
// and BTLs. The low eager limit forces the large counts onto the
// rendezvous path, and the shapes cover single-rank, single-node, and
// multi-node placements (the internal/coll unit tests sweep comm sizes
// 1..16 over an in-memory transport).

func propCfg() core.Config {
	return core.Config{CIDMode: core.CIDExtended, EagerLimit: 1024}
}

var propShapes = []struct{ nodes, ppn int }{
	{1, 1}, // degenerate: size-1 communicator
	{1, 4}, // single node: hier collapses to one group
	{2, 3}, // multi-node: hier splits leaders from locals
}

// propCounts covers count=0, one element, an odd count, and a payload
// (5600 bytes of Int64) beyond the 1024-byte eager limit.
var propCounts = []int{0, 1, 3, 700}

var propOps = []mpi.Op{
	mpi.OpSum, mpi.OpProd, mpi.OpMax, mpi.OpMin,
	mpi.OpLAnd, mpi.OpLOr, mpi.OpBAnd, mpi.OpBOr,
}

func refOp(op mpi.Op, a, b int64) int64 {
	switch op {
	case mpi.OpSum:
		return a + b
	case mpi.OpProd:
		return a * b
	case mpi.OpMax:
		if a > b {
			return a
		}
		return b
	case mpi.OpMin:
		if a < b {
			return a
		}
		return b
	case mpi.OpLAnd:
		if a != 0 && b != 0 {
			return 1
		}
		return 0
	case mpi.OpLOr:
		if a != 0 || b != 0 {
			return 1
		}
		return 0
	case mpi.OpBAnd:
		return a & b
	case mpi.OpBOr:
		return a | b
	}
	return a
}

// propVal is rank r's element i. The sprinkled zeros keep the logical and
// product operations honest.
func propVal(rank, i int) int64 {
	if (rank+i)%5 == 0 {
		return 0
	}
	return int64(rank*1000003 + i*7919 + 1)
}

func propInput(rank, count int) []int64 {
	v := make([]int64, count)
	for i := range v {
		v[i] = propVal(rank, i)
	}
	return v
}

func refReduce(op mpi.Op, size, count int) []int64 {
	acc := propInput(0, count)
	for r := 1; r < size; r++ {
		in := propInput(r, count)
		for i := range acc {
			acc[i] = refOp(op, acc[i], in[i])
		}
	}
	return acc
}

// forceAlgo pins one operation to one algorithm on the communicator.
func forceAlgo(c *mpi.Comm, op coll.Op, algo string) error {
	info := mpi.NewInfo()
	info.Set("gompi_coll_"+op.String(), algo)
	return c.SetInfo(info)
}

func TestPropertyAllreduceAllAlgorithms(t *testing.T) {
	for _, sh := range propShapes {
		run(t, sh.nodes, sh.ppn, propCfg(), func(p *mpi.Process) error {
			if err := p.Init(); err != nil {
				return err
			}
			defer p.Finalize()
			world := p.CommWorld()
			size, rank := world.Size(), world.Rank()
			for _, algo := range coll.Algorithms(coll.Allreduce) {
				if err := forceAlgo(world, coll.Allreduce, algo); err != nil {
					return err
				}
				for _, op := range propOps {
					for _, count := range propCounts {
						send := mpi.PackInt64s(propInput(rank, count))
						recv := make([]byte, count*8)
						if err := world.Allreduce(send, recv, count, mpi.Int64, op); err != nil {
							return fmt.Errorf("%s/%s count=%d: %w", algo, op, count, err)
						}
						want := refReduce(op, size, count)
						got := mpi.UnpackInt64s(recv)
						for i := range want {
							if got[i] != want[i] {
								return fmt.Errorf("allreduce/%s %s count=%d [%d]: got %d want %d",
									algo, op, count, i, got[i], want[i])
							}
						}
					}
				}
			}
			return nil
		})
	}
}

func TestPropertyReduceAllAlgorithms(t *testing.T) {
	for _, sh := range propShapes {
		run(t, sh.nodes, sh.ppn, propCfg(), func(p *mpi.Process) error {
			if err := p.Init(); err != nil {
				return err
			}
			defer p.Finalize()
			world := p.CommWorld()
			size, rank := world.Size(), world.Rank()
			roots := []int{0, size - 1}
			for _, algo := range coll.Algorithms(coll.Reduce) {
				if err := forceAlgo(world, coll.Reduce, algo); err != nil {
					return err
				}
				for _, op := range propOps {
					for _, count := range propCounts {
						for _, root := range roots {
							send := mpi.PackInt64s(propInput(rank, count))
							var recv []byte
							if rank == root {
								recv = make([]byte, count*8)
							}
							if err := world.Reduce(send, recv, count, mpi.Int64, op, root); err != nil {
								return fmt.Errorf("%s/%s count=%d root=%d: %w", algo, op, count, root, err)
							}
							if rank != root {
								continue
							}
							want := refReduce(op, size, count)
							got := mpi.UnpackInt64s(recv)
							for i := range want {
								if got[i] != want[i] {
									return fmt.Errorf("reduce/%s %s count=%d root=%d [%d]: got %d want %d",
										algo, op, count, root, i, got[i], want[i])
								}
							}
						}
					}
				}
			}
			return nil
		})
	}
}

func TestPropertyBcastAllAlgorithms(t *testing.T) {
	payload := func(root, n int) []byte {
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(root*29 + i*13 + 7)
		}
		return b
	}
	for _, sh := range propShapes {
		run(t, sh.nodes, sh.ppn, propCfg(), func(p *mpi.Process) error {
			if err := p.Init(); err != nil {
				return err
			}
			defer p.Finalize()
			world := p.CommWorld()
			size, rank := world.Size(), world.Rank()
			roots := []int{0, size - 1, size / 2}
			for _, algo := range coll.Algorithms(coll.Bcast) {
				if err := forceAlgo(world, coll.Bcast, algo); err != nil {
					return err
				}
				for _, n := range []int{0, 1, 37, 5600} {
					for _, root := range roots {
						buf := make([]byte, n)
						if rank == root {
							copy(buf, payload(root, n))
						}
						if err := world.Bcast(buf, root); err != nil {
							return fmt.Errorf("bcast/%s n=%d root=%d: %w", algo, n, root, err)
						}
						want := payload(root, n)
						for i := range want {
							if buf[i] != want[i] {
								return fmt.Errorf("bcast/%s n=%d root=%d [%d]: got %d want %d",
									algo, n, root, i, buf[i], want[i])
							}
						}
					}
				}
			}
			return nil
		})
	}
}

func TestPropertyBarrierAllAlgorithms(t *testing.T) {
	for _, sh := range propShapes {
		run(t, sh.nodes, sh.ppn, propCfg(), func(p *mpi.Process) error {
			if err := p.Init(); err != nil {
				return err
			}
			defer p.Finalize()
			world := p.CommWorld()
			for _, algo := range coll.Algorithms(coll.Barrier) {
				if err := forceAlgo(world, coll.Barrier, algo); err != nil {
					return err
				}
				for i := 0; i < 3; i++ {
					if err := world.Barrier(); err != nil {
						return fmt.Errorf("barrier/%s round %d: %w", algo, i, err)
					}
				}
			}
			return nil
		})
	}
}

func TestPropertyAllgatherAllAlgorithms(t *testing.T) {
	blockVal := func(r, i int) byte { return byte(r*37 + i*11 + 2) }
	for _, sh := range propShapes {
		run(t, sh.nodes, sh.ppn, propCfg(), func(p *mpi.Process) error {
			if err := p.Init(); err != nil {
				return err
			}
			defer p.Finalize()
			world := p.CommWorld()
			size, rank := world.Size(), world.Rank()
			for _, algo := range coll.Algorithms(coll.Allgather) {
				if err := forceAlgo(world, coll.Allgather, algo); err != nil {
					return err
				}
				for _, blk := range []int{0, 1, 37, 2048} {
					send := make([]byte, blk)
					for i := range send {
						send[i] = blockVal(rank, i)
					}
					recv := make([]byte, blk*size)
					if err := world.Allgather(send, recv); err != nil {
						return fmt.Errorf("allgather/%s blk=%d: %w", algo, blk, err)
					}
					for r := 0; r < size; r++ {
						for i := 0; i < blk; i++ {
							if got, want := recv[r*blk+i], blockVal(r, i); got != want {
								return fmt.Errorf("allgather/%s blk=%d rank-block %d [%d]: got %d want %d",
									algo, blk, r, i, got, want)
							}
						}
					}
				}
			}
			return nil
		})
	}
}

func TestPropertyAlltoallAllAlgorithms(t *testing.T) {
	blockVal := func(src, dst, i int) byte { return byte(src*31 + dst*17 + i*3 + 1) }
	for _, sh := range propShapes {
		run(t, sh.nodes, sh.ppn, propCfg(), func(p *mpi.Process) error {
			if err := p.Init(); err != nil {
				return err
			}
			defer p.Finalize()
			world := p.CommWorld()
			size, rank := world.Size(), world.Rank()
			for _, algo := range coll.Algorithms(coll.Alltoall) {
				if err := forceAlgo(world, coll.Alltoall, algo); err != nil {
					return err
				}
				for _, blk := range []int{0, 1, 37, 1200} {
					send := make([]byte, blk*size)
					for d := 0; d < size; d++ {
						for i := 0; i < blk; i++ {
							send[d*blk+i] = blockVal(rank, d, i)
						}
					}
					recv := make([]byte, blk*size)
					if err := world.Alltoall(send, recv); err != nil {
						return fmt.Errorf("alltoall/%s blk=%d: %w", algo, blk, err)
					}
					for s := 0; s < size; s++ {
						for i := 0; i < blk; i++ {
							if got, want := recv[s*blk+i], blockVal(s, rank, i); got != want {
								return fmt.Errorf("alltoall/%s blk=%d from %d [%d]: got %d want %d",
									algo, blk, s, i, got, want)
							}
						}
					}
				}
			}
			return nil
		})
	}
}

// TestPropertyUserOpNonCommutative drives the order-preserving dispatch
// path with a genuinely non-commutative operation (2x2 upper-triangular
// matrix composition encoded as (a, b) pairs): any reordering of the fold
// would change the result.
func TestPropertyUserOpNonCommutative(t *testing.T) {
	affine := mpi.OpCreate("affine-compose", func(inout, in []byte, count int, dt mpi.Datatype) error {
		vals := mpi.UnpackInt64s(inout)
		rhs := mpi.UnpackInt64s(in)
		// count is the int64 element count; elements pair up as (a, b).
		for i := 0; i < count/2; i++ {
			a1, b1 := vals[2*i], vals[2*i+1]
			a2, b2 := rhs[2*i], rhs[2*i+1]
			vals[2*i], vals[2*i+1] = a1*a2, a1*b2+b1
		}
		copy(inout, mpi.PackInt64s(vals))
		return nil
	})
	for _, sh := range propShapes {
		run(t, sh.nodes, sh.ppn, propCfg(), func(p *mpi.Process) error {
			if err := p.Init(); err != nil {
				return err
			}
			defer p.Finalize()
			world := p.CommWorld()
			size, rank := world.Size(), world.Rank()
			const count = 5
			pair := func(r int) []int64 {
				v := make([]int64, 2*count)
				for i := 0; i < count; i++ {
					v[2*i] = int64(2 + (r+i)%3)
					v[2*i+1] = int64(r*7 + i + 1)
				}
				return v
			}
			want := pair(0)
			for r := 1; r < size; r++ {
				rhs := pair(r)
				for i := 0; i < count; i++ {
					a1, b1 := want[2*i], want[2*i+1]
					a2, b2 := rhs[2*i], rhs[2*i+1]
					want[2*i], want[2*i+1] = a1*a2, a1*b2+b1
				}
			}
			send := mpi.PackInt64s(pair(rank))
			recv := make([]byte, len(send))
			// Dispatch uses Int64 with a doubled count: each logical element
			// is an (a, b) pair of int64s.
			if err := world.AllreduceUser(send, recv, 2*count, mpi.Int64, affine); err != nil {
				return err
			}
			got := mpi.UnpackInt64s(recv)
			for i := range want {
				if got[i] != want[i] {
					return fmt.Errorf("allreduce-user [%d]: got %d want %d", i, got[i], want[i])
				}
			}
			recv2 := make([]byte, len(send))
			if err := world.ReduceUser(send, recv2, 2*count, mpi.Int64, affine, 0); err != nil {
				return err
			}
			if rank == 0 {
				got2 := mpi.UnpackInt64s(recv2)
				for i := range want {
					if got2[i] != want[i] {
						return fmt.Errorf("reduce-user [%d]: got %d want %d", i, got2[i], want[i])
					}
				}
			}
			return nil
		})
	}
}
