package mpi_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"gompi/mpi"
)

// Spec-oriented conformance checks for the Sessions proposal, in the
// spirit of the companion mpi_sessions_tests repository the paper cites.

// Conformance: MPI_Session_init must be thread-safe and callable
// concurrently (§II-A: "can be called multiple times and must always be
// thread-safe").
func TestConformanceSessionInitThreadSafe(t *testing.T) {
	run(t, 1, 2, exCfg(), func(p *mpi.Process) error {
		const threads = 8
		var wg sync.WaitGroup
		sessions := make([]*mpi.Session, threads)
		errs := make([]error, threads)
		for i := 0; i < threads; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				sessions[i], errs[i] = p.SessionInit(nil, mpi.ErrorsReturn())
			}(i)
		}
		wg.Wait()
		for i := 0; i < threads; i++ {
			if errs[i] != nil {
				return errs[i]
			}
		}
		// Concurrent finalization must also be safe.
		for i := 0; i < threads; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				errs[i] = sessions[i].Finalize()
			}(i)
		}
		wg.Wait()
		for i := 0; i < threads; i++ {
			if errs[i] != nil {
				return errs[i]
			}
		}
		return nil
	})
}

// Conformance: the implementation must support the mpi://world and
// mpi://self process sets (and this prototype additionally defines
// mpi://shared, §III-B6).
func TestConformanceRequiredPsets(t *testing.T) {
	run(t, 1, 2, exCfg(), func(p *mpi.Process) error {
		sess, err := p.SessionInit(nil, nil)
		if err != nil {
			return err
		}
		defer sess.Finalize()
		for _, required := range []string{"mpi://world", "mpi://self"} {
			g, err := sess.GroupFromPset(required)
			if err != nil {
				return fmt.Errorf("required pset %q: %w", required, err)
			}
			if g.Size() == 0 {
				return fmt.Errorf("required pset %q is empty", required)
			}
		}
		return nil
	})
}

// Conformance: MPI_Session_init and MPI_Group_from_session_pset are local
// operations — a single process completing them alone must not block on
// any peer (§I: "local and light-weight").
func TestConformanceLocalOperationsDoNotBlock(t *testing.T) {
	run(t, 1, 4, exCfg(), func(p *mpi.Process) error {
		if p.JobRank() != 2 {
			// Everyone else does nothing MPI-related at all.
			return nil
		}
		done := make(chan error, 1)
		go func() {
			sess, err := p.SessionInit(nil, nil)
			if err != nil {
				done <- err
				return
			}
			if _, err := sess.GroupFromPset(mpi.PsetWorld); err != nil {
				done <- err
				return
			}
			if _, err := sess.NumPsets(); err != nil {
				done <- err
				return
			}
			done <- sess.Finalize()
		}()
		select {
		case err := <-done:
			return err
		case <-time.After(10 * time.Second):
			return fmt.Errorf("local session operations blocked on peers")
		}
	})
}

// Conformance: pset name matching is case-insensitive for the reserved
// mpi:// names (the proposal specifies case-insensitive pset names).
func TestConformancePsetNamesCaseInsensitive(t *testing.T) {
	run(t, 1, 2, exCfg(), func(p *mpi.Process) error {
		sess, err := p.SessionInit(nil, nil)
		if err != nil {
			return err
		}
		defer sess.Finalize()
		g1, err := sess.GroupFromPset("MPI://WORLD")
		if err != nil {
			return err
		}
		g2, err := sess.GroupFromPset("mpi://world")
		if err != nil {
			return err
		}
		if g1.Compare(g2) != mpi.Ident {
			return fmt.Errorf("case variants resolved to different groups")
		}
		return nil
	})
}

// Conformance: objects derived from different sessions must be usable
// concurrently without any cross-session ordering (§II-B), and finalizing
// one session must not disturb the other.
func TestConformanceSessionIsolationOnFinalize(t *testing.T) {
	run(t, 1, 2, exCfg(), func(p *mpi.Process) error {
		s1, err := p.SessionInit(nil, nil)
		if err != nil {
			return err
		}
		s2, err := p.SessionInit(nil, nil)
		if err != nil {
			return err
		}
		g1, err := s1.GroupFromPset(mpi.PsetWorld)
		if err != nil {
			return err
		}
		c1, err := s1.CommCreateFromGroup(g1, "iso1", nil, nil)
		if err != nil {
			return err
		}
		if err := c1.Free(); err != nil {
			return err
		}
		if err := s1.Finalize(); err != nil {
			return err
		}
		// Session 2 is created before s1's finalize but used only after:
		// must be fully functional.
		g2, err := s2.GroupFromPset(mpi.PsetWorld)
		if err != nil {
			return err
		}
		c2, err := s2.CommCreateFromGroup(g2, "iso2", nil, nil)
		if err != nil {
			return err
		}
		if err := c2.Barrier(); err != nil {
			return err
		}
		if err := c2.Free(); err != nil {
			return err
		}
		return s2.Finalize()
	})
}

// Conformance: the WPM cannot be re-initialized, but sessions can be
// created after MPI_Finalize (§III-B5's init cycle applies to sessions).
func TestConformanceSessionsAfterWPMFinalize(t *testing.T) {
	run(t, 1, 2, exCfg(), func(p *mpi.Process) error {
		if err := p.Init(); err != nil {
			return err
		}
		if err := p.Finalize(); err != nil {
			return err
		}
		sess, err := p.SessionInit(nil, nil)
		if err != nil {
			return fmt.Errorf("session after MPI_Finalize: %w", err)
		}
		grp, err := sess.GroupFromPset(mpi.PsetWorld)
		if err != nil {
			return err
		}
		comm, err := sess.CommCreateFromGroup(grp, "post-wpm", nil, nil)
		if err != nil {
			return err
		}
		if err := comm.Barrier(); err != nil {
			return err
		}
		if err := comm.Free(); err != nil {
			return err
		}
		return sess.Finalize()
	})
}
