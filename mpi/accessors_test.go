package mpi_test

import (
	"fmt"
	"testing"

	"gompi/mpi"
)

// Accessor and string-method smoke coverage: cheap guarantees that the
// small public surface behaves, caught here rather than in user code.
func TestSmallAccessors(t *testing.T) {
	run(t, 1, 2, exCfg(), func(p *mpi.Process) error {
		sess, err := p.SessionInit(nil, nil)
		if err != nil {
			return err
		}
		defer sess.Finalize()
		grp, err := sess.GroupFromPset(mpi.PsetWorld)
		if err != nil {
			return err
		}
		// Package-level constructor spelling.
		comm, err := mpi.CommCreateFromGroup(sess, grp, "accessors", nil, nil)
		if err != nil {
			return err
		}
		defer comm.Free()
		if comm.Session() != sess {
			return fmt.Errorf("Session() mismatch")
		}
		comm.SetErrhandler(nil) // nil resets to ErrorsReturn
		if err := comm.Send(nil, 99, 0); err == nil {
			return fmt.Errorf("errors should still return after SetErrhandler(nil)")
		}
		comm.SetErrhandler(mpi.ErrorsReturn())

		cart, err := comm.CartCreate([]int{2}, []bool{true}, false)
		if err != nil {
			return err
		}
		defer cart.Free()
		d := cart.Dims()
		if len(d) != 1 || d[0] != 2 {
			return fmt.Errorf("Dims = %v", d)
		}
		d[0] = 99
		if cart.Dims()[0] != 2 {
			return fmt.Errorf("Dims aliases internal state")
		}
		return nil
	})
}

func TestDatatypeAndLevelStrings(t *testing.T) {
	for dt, want := range map[string]string{
		mpi.Byte.String():    "MPI_BYTE",
		mpi.Int32.String():   "MPI_INT32_T",
		mpi.Int64.String():   "MPI_INT64_T",
		mpi.Uint32.String():  "MPI_UINT32_T",
		mpi.Uint64.String():  "MPI_UINT64_T",
		mpi.Float32.String(): "MPI_FLOAT",
		mpi.Float64.String(): "MPI_DOUBLE",
	} {
		if dt != want {
			t.Errorf("datatype string %q != %q", dt, want)
		}
	}
	for lvl, want := range map[mpi.ThreadLevel]string{
		mpi.ThreadSingle:     "MPI_THREAD_SINGLE",
		mpi.ThreadFunneled:   "MPI_THREAD_FUNNELED",
		mpi.ThreadSerialized: "MPI_THREAD_SERIALIZED",
		mpi.ThreadMultiple:   "MPI_THREAD_MULTIPLE",
	} {
		if lvl.String() != want {
			t.Errorf("%d.String() = %q", lvl, lvl.String())
		}
	}
	for op, want := range map[mpi.Op]string{
		mpi.OpSum: "MPI_SUM", mpi.OpProd: "MPI_PROD", mpi.OpMax: "MPI_MAX",
		mpi.OpMin: "MPI_MIN", mpi.OpLAnd: "MPI_LAND", mpi.OpLOr: "MPI_LOR",
		mpi.OpBAnd: "MPI_BAND", mpi.OpBOr: "MPI_BOR",
	} {
		if op.String() != want {
			t.Errorf("op string = %q, want %q", op.String(), want)
		}
	}
	for class, want := range map[mpi.ErrorClass]string{
		mpi.ErrSuccess: "MPI_SUCCESS", mpi.ErrClassTruncate: "MPI_ERR_TRUNCATE",
		mpi.ErrClassProcFailed: "MPI_ERR_PROC_FAILED", mpi.ErrClassOther: "MPI_ERR_OTHER",
	} {
		if class.String() != want {
			t.Errorf("class string = %q, want %q", class.String(), want)
		}
	}
}
