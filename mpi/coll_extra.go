package mpi

import (
	"fmt"
)

// Additional collectives: prefix reductions, reduce-scatter, vector
// variants, and nonblocking forms. All follow the same internal-tag
// sequencing discipline as coll.go.

// Scan computes the inclusive prefix reduction: member i receives
// op(sendBuf_0, ..., sendBuf_i) (MPI_Scan). Linear chain algorithm.
func (c *Comm) Scan(sendBuf, recvBuf []byte, count int, dt Datatype, op Op) error {
	if err := c.checkLive(); err != nil {
		return c.errh.invoke(err)
	}
	nbytes := count * dt.Size()
	if len(sendBuf) < nbytes || len(recvBuf) < nbytes {
		return c.errh.invoke(fmt.Errorf("mpi: scan buffers too small for %d x %s", count, dt))
	}
	tag := c.nextCollTag()
	rank, size := c.Rank(), c.Size()
	copy(recvBuf[:nbytes], sendBuf[:nbytes])
	if rank > 0 {
		prev := make([]byte, nbytes)
		if err := c.recvT(prev, rank-1, tag); err != nil {
			return c.errh.invoke(err)
		}
		// recvBuf = prev op mine (prefix order: earlier ranks first).
		if err := reduce(op, dt, prev, recvBuf[:nbytes], count); err != nil {
			return c.errh.invoke(err)
		}
		copy(recvBuf[:nbytes], prev)
	}
	if rank < size-1 {
		if err := c.sendT(recvBuf[:nbytes], rank+1, tag); err != nil {
			return c.errh.invoke(err)
		}
	}
	return nil
}

// Exscan computes the exclusive prefix reduction: member i receives
// op(sendBuf_0, ..., sendBuf_{i-1}); member 0's recvBuf is left untouched
// (MPI_Exscan).
func (c *Comm) Exscan(sendBuf, recvBuf []byte, count int, dt Datatype, op Op) error {
	if err := c.checkLive(); err != nil {
		return c.errh.invoke(err)
	}
	nbytes := count * dt.Size()
	if len(sendBuf) < nbytes || len(recvBuf) < nbytes {
		return c.errh.invoke(fmt.Errorf("mpi: exscan buffers too small for %d x %s", count, dt))
	}
	tag := c.nextCollTag()
	rank, size := c.Rank(), c.Size()
	// Running prefix including my contribution, forwarded down the chain.
	acc := make([]byte, nbytes)
	copy(acc, sendBuf[:nbytes])
	if rank > 0 {
		prev := make([]byte, nbytes)
		if err := c.recvT(prev, rank-1, tag); err != nil {
			return c.errh.invoke(err)
		}
		copy(recvBuf[:nbytes], prev)
		// Forwarded accumulator is the inclusive prefix, ordered
		// prefix-first to match Scan for non-commutative ops.
		copy(acc, prev)
		if err := reduce(op, dt, acc, sendBuf[:nbytes], count); err != nil {
			return c.errh.invoke(err)
		}
	}
	if rank < size-1 {
		if err := c.sendT(acc, rank+1, tag); err != nil {
			return c.errh.invoke(err)
		}
	}
	return nil
}

// ReduceScatterBlock reduces size*count elements across all members and
// scatters one count-element block to each (MPI_Reduce_scatter_block):
// member i receives elements [i*count, (i+1)*count) of the reduction.
func (c *Comm) ReduceScatterBlock(sendBuf, recvBuf []byte, count int, dt Datatype, op Op) error {
	if err := c.checkLive(); err != nil {
		return c.errh.invoke(err)
	}
	size := c.Size()
	nbytes := count * dt.Size()
	if len(sendBuf) < size*nbytes {
		return c.errh.invoke(fmt.Errorf("mpi: reduce_scatter send buffer %d < %d bytes", len(sendBuf), size*nbytes))
	}
	if len(recvBuf) < nbytes {
		return c.errh.invoke(fmt.Errorf("mpi: reduce_scatter recv buffer %d < %d bytes", len(recvBuf), nbytes))
	}
	// Reduce the full vector to rank 0, then scatter blocks.
	var full []byte
	if c.Rank() == 0 {
		full = make([]byte, size*nbytes)
	}
	rtag := c.nextCollTag()
	if err := c.reduceWithTag(sendBuf, full, size*count, dt, op, 0, rtag); err != nil {
		return c.errh.invoke(err)
	}
	return c.Scatter(full, recvBuf[:nbytes], 0)
}

// Allgatherv concatenates variable-sized blocks from every member into
// recvBuf at every member (MPI_Allgatherv). counts[i] is the byte length
// contributed by member i; displs[i] its offset in recvBuf.
func (c *Comm) Allgatherv(sendBuf, recvBuf []byte, counts, displs []int) error {
	if err := c.checkLive(); err != nil {
		return c.errh.invoke(err)
	}
	size := c.Size()
	if len(counts) != size || len(displs) != size {
		return c.errh.invoke(fmt.Errorf("mpi: allgatherv needs %d counts/displs", size))
	}
	for i := 0; i < size; i++ {
		if displs[i]+counts[i] > len(recvBuf) {
			return c.errh.invoke(fmt.Errorf("mpi: allgatherv recv buffer too small for block %d", i))
		}
	}
	if len(sendBuf) < counts[c.Rank()] {
		return c.errh.invoke(fmt.Errorf("mpi: allgatherv send buffer %d < count %d", len(sendBuf), counts[c.Rank()]))
	}
	tag := c.nextCollTag()
	rank := c.Rank()
	copy(recvBuf[displs[rank]:displs[rank]+counts[rank]], sendBuf)
	if size == 1 {
		return nil
	}
	right := (rank + 1) % size
	left := (rank - 1 + size) % size
	for i := 0; i < size-1; i++ {
		sendBlk := (rank - i + size) % size
		recvBlk := (rank - i - 1 + size) % size
		if err := c.sendrecvT(
			recvBuf[displs[sendBlk]:displs[sendBlk]+counts[sendBlk]], right,
			recvBuf[displs[recvBlk]:displs[recvBlk]+counts[recvBlk]], left, tag); err != nil {
			return c.errh.invoke(err)
		}
	}
	return nil
}

// Gatherv concentrates variable-sized blocks at root (MPI_Gatherv).
func (c *Comm) Gatherv(sendBuf, recvBuf []byte, counts, displs []int, root int) error {
	if err := c.checkLive(); err != nil {
		return c.errh.invoke(err)
	}
	size, rank := c.Size(), c.Rank()
	tag := c.nextCollTag()
	if rank != root {
		return c.errh.invoke(c.sendT(sendBuf, root, tag))
	}
	if len(counts) != size || len(displs) != size {
		return c.errh.invoke(fmt.Errorf("mpi: gatherv needs %d counts/displs", size))
	}
	copy(recvBuf[displs[rank]:displs[rank]+counts[rank]], sendBuf)
	for r := 0; r < size; r++ {
		if r == root {
			continue
		}
		if displs[r]+counts[r] > len(recvBuf) {
			return c.errh.invoke(fmt.Errorf("mpi: gatherv recv buffer too small for block %d", r))
		}
		if err := c.recvT(recvBuf[displs[r]:displs[r]+counts[r]], r, tag); err != nil {
			return c.errh.invoke(err)
		}
	}
	return nil
}

// Scatterv distributes variable-sized blocks from root (MPI_Scatterv).
func (c *Comm) Scatterv(sendBuf []byte, counts, displs []int, recvBuf []byte, root int) error {
	if err := c.checkLive(); err != nil {
		return c.errh.invoke(err)
	}
	size, rank := c.Size(), c.Rank()
	tag := c.nextCollTag()
	if rank != root {
		return c.errh.invoke(c.recvT(recvBuf, root, tag))
	}
	if len(counts) != size || len(displs) != size {
		return c.errh.invoke(fmt.Errorf("mpi: scatterv needs %d counts/displs", size))
	}
	for r := 0; r < size; r++ {
		if r == root {
			continue
		}
		if displs[r]+counts[r] > len(sendBuf) {
			return c.errh.invoke(fmt.Errorf("mpi: scatterv send buffer too small for block %d", r))
		}
		if err := c.sendT(sendBuf[displs[r]:displs[r]+counts[r]], r, tag); err != nil {
			return c.errh.invoke(err)
		}
	}
	copy(recvBuf, sendBuf[displs[rank]:displs[rank]+counts[rank]])
	return nil
}

// Iallreduce is the nonblocking form of Allreduce (MPI_Iallreduce). The
// internal tag window is claimed at call time, so members may overlap it
// with other traffic as long as collective call order stays consistent.
// It dispatches through the same framework module as Allreduce, so the
// nonblocking path cannot diverge from the algorithm the blocking path
// would select.
func (c *Comm) Iallreduce(sendBuf, recvBuf []byte, count int, dt Datatype, op Op) (Request, error) {
	if err := c.checkLive(); err != nil {
		return nil, c.errh.invoke(err)
	}
	nbytes := count * dt.Size()
	if len(sendBuf) < nbytes {
		return nil, c.errh.invoke(fmt.Errorf("mpi: iallreduce send buffer %d < %d bytes", len(sendBuf), nbytes))
	}
	if len(recvBuf) < nbytes {
		return nil, c.errh.invoke(fmt.Errorf("mpi: iallreduce recv buffer %d < %d bytes", len(recvBuf), nbytes))
	}
	m, err := c.collModule()
	if err != nil {
		return nil, c.errh.invoke(err)
	}
	tag := c.nextCollTag()
	return startGoRequest(func() error {
		return m.Allreduce(sendBuf, recvBuf, count, dt.Size(), builtinReducer(op, dt), true, tag)
	}), nil
}

// Ibcast is the nonblocking form of Bcast (MPI_Ibcast), dispatched through
// the same framework module as Bcast.
func (c *Comm) Ibcast(buf []byte, root int) (Request, error) {
	if err := c.checkLive(); err != nil {
		return nil, c.errh.invoke(err)
	}
	if root < 0 || root >= c.Size() {
		return nil, c.errh.invoke(fmt.Errorf("mpi: ibcast root %d out of range", root))
	}
	m, err := c.collModule()
	if err != nil {
		return nil, c.errh.invoke(err)
	}
	tag := c.nextCollTag()
	return startGoRequest(func() error { return m.Bcast(buf, root, tag) }), nil
}
