package mpi

import (
	"fmt"

	"gompi/internal/pml"
)

// Wildcards re-exported from the PML.
const (
	AnySource = pml.AnySource
	AnyTag    = pml.AnyTag
)

// Status reports the outcome of a receive.
type Status struct {
	Source int // comm rank of the sender
	Tag    int
	Count  int // bytes received
}

func fromPML(st pml.Status) Status {
	return Status{Source: st.Source, Tag: st.Tag, Count: st.Count}
}

// Request is the completion handle of a nonblocking operation.
type Request interface {
	// Wait blocks until completion.
	Wait() (Status, error)
	// Test polls for completion without blocking.
	Test() (bool, Status, error)
}

// pmlRequest adapts a PML request.
type pmlRequest struct{ r *pml.Request }

func (q pmlRequest) Wait() (Status, error) {
	st, err := q.r.Wait()
	return fromPML(st), err
}

func (q pmlRequest) Test() (bool, Status, error) {
	ok, st, err := q.r.Test()
	return ok, fromPML(st), err
}

// goRequest runs an operation on a goroutine and completes like a request;
// used for nonblocking collectives such as Ibarrier.
type goRequest struct {
	done chan struct{}
	err  error
}

func startGoRequest(fn func() error) *goRequest {
	g := &goRequest{done: make(chan struct{})}
	go func() {
		g.err = fn()
		close(g.done)
	}()
	return g
}

func (g *goRequest) Wait() (Status, error) {
	<-g.done
	return Status{}, g.err
}

func (g *goRequest) Test() (bool, Status, error) {
	select {
	case <-g.done:
		return true, Status{}, g.err
	default:
		return false, Status{}, nil
	}
}

// WaitAll waits for every request, returning the first error.
func WaitAll(reqs ...Request) error {
	var first error
	for _, r := range reqs {
		if r == nil {
			continue
		}
		if _, err := r.Wait(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (c *Comm) checkP2P(peer, tag int, wildcardOK bool) error {
	if err := c.checkLive(); err != nil {
		return err
	}
	if wildcardOK && peer == AnySource {
		return nil
	}
	if peer < 0 || peer >= c.Size() {
		return fmt.Errorf("mpi: peer rank %d out of range [0,%d)", peer, c.Size())
	}
	return nil
}

// Send performs a blocking standard-mode send (MPI_Send).
func (c *Comm) Send(buf []byte, dest, tag int) error {
	if err := c.checkP2P(dest, tag, false); err != nil {
		return c.errh.invoke(err)
	}
	return c.errh.invoke(c.ch.Send(dest, tag, buf))
}

// Isend starts a nonblocking send (MPI_Isend).
func (c *Comm) Isend(buf []byte, dest, tag int) Request {
	if err := c.checkP2P(dest, tag, false); err != nil {
		return startGoRequest(func() error { return c.errh.invoke(err) })
	}
	return pmlRequest{c.ch.Isend(dest, tag, buf)}
}

// Ssend performs a blocking synchronous-mode send (MPI_Ssend): it returns
// only after the receiver has matched the message.
func (c *Comm) Ssend(buf []byte, dest, tag int) error {
	if err := c.checkP2P(dest, tag, false); err != nil {
		return c.errh.invoke(err)
	}
	return c.errh.invoke(c.ch.Ssend(dest, tag, buf))
}

// Issend starts a nonblocking synchronous-mode send (MPI_Issend).
func (c *Comm) Issend(buf []byte, dest, tag int) Request {
	if err := c.checkP2P(dest, tag, false); err != nil {
		return startGoRequest(func() error { return c.errh.invoke(err) })
	}
	return pmlRequest{c.ch.Issend(dest, tag, buf)}
}

// Recv performs a blocking receive (MPI_Recv). src may be AnySource and
// tag may be AnyTag.
func (c *Comm) Recv(buf []byte, src, tag int) (Status, error) {
	if err := c.checkP2P(src, tag, true); err != nil {
		return Status{}, c.errh.invoke(err)
	}
	st, err := c.ch.Recv(src, tag, buf)
	return fromPML(st), c.errh.invoke(err)
}

// Irecv posts a nonblocking receive (MPI_Irecv).
func (c *Comm) Irecv(buf []byte, src, tag int) Request {
	if err := c.checkP2P(src, tag, true); err != nil {
		return startGoRequest(func() error { return c.errh.invoke(err) })
	}
	return pmlRequest{c.ch.Irecv(src, tag, buf)}
}

// Sendrecv performs a combined send and receive (MPI_Sendrecv).
func (c *Comm) Sendrecv(sendBuf []byte, dest, sendTag int, recvBuf []byte, src, recvTag int) (Status, error) {
	if err := c.checkP2P(dest, sendTag, false); err != nil {
		return Status{}, c.errh.invoke(err)
	}
	if err := c.checkP2P(src, recvTag, true); err != nil {
		return Status{}, c.errh.invoke(err)
	}
	rreq := c.ch.Irecv(src, recvTag, recvBuf)
	sreq := c.ch.Isend(dest, sendTag, sendBuf)
	if _, err := sreq.Wait(); err != nil {
		return Status{}, c.errh.invoke(err)
	}
	st, err := rreq.Wait()
	return fromPML(st), c.errh.invoke(err)
}

// Probe blocks until a matching message is pending (MPI_Probe).
func (c *Comm) Probe(src, tag int) (Status, error) {
	if err := c.checkP2P(src, tag, true); err != nil {
		return Status{}, c.errh.invoke(err)
	}
	st, err := c.ch.Probe(src, tag)
	return fromPML(st), c.errh.invoke(err)
}

// Iprobe checks for a matching pending message (MPI_Iprobe).
func (c *Comm) Iprobe(src, tag int) (Status, bool, error) {
	if err := c.checkP2P(src, tag, true); err != nil {
		return Status{}, false, c.errh.invoke(err)
	}
	st, ok := c.ch.Iprobe(src, tag)
	return fromPML(st), ok, nil
}

// sendT / recvT are internal helpers for collectives using internal tags.
func (c *Comm) sendT(buf []byte, dest, tag int) error {
	return c.ch.Send(dest, tag, buf)
}

func (c *Comm) recvT(buf []byte, src, tag int) error {
	_, err := c.ch.Recv(src, tag, buf)
	return err
}

func (c *Comm) sendrecvT(sendBuf []byte, dest int, recvBuf []byte, src int, tag int) error {
	rreq := c.ch.Irecv(src, tag, recvBuf)
	if err := c.ch.Send(dest, tag, sendBuf); err != nil {
		return err
	}
	_, err := rreq.Wait()
	return err
}
