package mpi

import (
	"errors"

	"gompi/internal/btl"
	"gompi/internal/pmix"
	"gompi/internal/pml"
	"gompi/internal/prrte"
	"gompi/internal/simnet"
)

// MPI error classes (MPI_ERR_*). ErrorClass maps any error produced by
// this library onto the closest MPI class, for applications porting
// MPI_Error_class-driven handling.
type ErrorClass int

const (
	ErrSuccess ErrorClass = iota
	ErrClassComm
	ErrClassGroup
	ErrClassRank
	ErrClassTag
	ErrClassTruncate
	ErrClassBuffer
	ErrClassSession
	ErrClassUnsupported
	ErrClassTimedOut
	ErrClassProcFailed
	ErrClassRevoked
	ErrClassOther
)

// String returns the MPI-style name of the class.
func (c ErrorClass) String() string {
	switch c {
	case ErrSuccess:
		return "MPI_SUCCESS"
	case ErrClassComm:
		return "MPI_ERR_COMM"
	case ErrClassGroup:
		return "MPI_ERR_GROUP"
	case ErrClassRank:
		return "MPI_ERR_RANK"
	case ErrClassTag:
		return "MPI_ERR_TAG"
	case ErrClassTruncate:
		return "MPI_ERR_TRUNCATE"
	case ErrClassBuffer:
		return "MPI_ERR_BUFFER"
	case ErrClassSession:
		return "MPI_ERR_SESSION"
	case ErrClassUnsupported:
		return "MPI_ERR_UNSUPPORTED_OPERATION"
	case ErrClassTimedOut:
		return "MPI_ERR_PENDING" // closest standard class for a timeout
	case ErrClassProcFailed:
		return "MPI_ERR_PROC_FAILED"
	case ErrClassRevoked:
		return "MPI_ERR_REVOKED"
	}
	return "MPI_ERR_OTHER"
}

// ErrorClassOf classifies an error (MPI_Error_class).
func ErrorClassOf(err error) ErrorClass {
	switch {
	case err == nil:
		return ErrSuccess
	case errors.Is(err, pml.ErrTruncate):
		return ErrClassTruncate
	// Proc-failure outranks the transport classes: an error raised by a
	// peer's death usually also chains a closed-endpoint error, and the
	// failure is the part fault-tolerant callers dispatch on. It also
	// outranks the timeout class — a control-plane operation cut short
	// because a participant died is a death, not a deadline.
	case errors.Is(err, pmix.ErrTerminated), errors.Is(err, pml.ErrPeerFailed),
		errors.Is(err, prrte.ErrDeadParticipant):
		return ErrClassProcFailed
	// Revocation is the failure-recovery protocol's own signal (a member
	// revoked the communicator after observing a death), so like
	// proc-failure it outranks the transport classes.
	case errors.Is(err, pml.ErrRevoked):
		return ErrClassRevoked
	case errors.Is(err, ErrCommFreed), errors.Is(err, pml.ErrClosed),
		errors.Is(err, btl.ErrClosed), errors.Is(err, simnet.ErrClosed),
		errors.Is(err, btl.ErrUnreachable), errors.Is(err, prrte.ErrShutdown):
		return ErrClassComm
	case errors.Is(err, ErrSessionFinalized), errors.Is(err, ErrAlreadyInitialized),
		errors.Is(err, ErrNotInitialized), errors.Is(err, ErrFinalized):
		return ErrClassSession
	case errors.Is(err, ErrUnsupported):
		return ErrClassUnsupported
	case errors.Is(err, pmix.ErrTimeout), errors.Is(err, prrte.ErrTimeout),
		errors.Is(err, simnet.ErrTimeout):
		return ErrClassTimedOut
	}
	return ErrClassOther
}

// ErrorString renders an error the way MPI_Error_string would: the class
// name followed by the detailed message.
func ErrorString(err error) string {
	if err == nil {
		return ErrSuccess.String()
	}
	return ErrorClassOf(err).String() + ": " + err.Error()
}
