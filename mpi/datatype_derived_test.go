package mpi_test

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"gompi/mpi"
)

func TestTypeVectorPackUnpack(t *testing.T) {
	// A 4x4 byte grid; select column 1 (4 blocks of 1, stride 4).
	grid := []byte{
		0, 1, 2, 3,
		4, 5, 6, 7,
		8, 9, 10, 11,
		12, 13, 14, 15,
	}
	col, err := mpi.TypeVector(4, 1, 4, mpi.Byte)
	if err != nil {
		t.Fatal(err)
	}
	if col.Size() != 4 || col.Extent() != 13 {
		t.Fatalf("size=%d extent=%d, want 4/13", col.Size(), col.Extent())
	}
	packed, err := col.Pack(grid[1:]) // start at column 1
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(packed, []byte{1, 5, 9, 13}) {
		t.Fatalf("packed = %v", packed)
	}
	// Unpack into a zeroed grid and confirm only the column is written.
	dst := make([]byte, 16)
	if err := col.Unpack(dst[1:], packed); err != nil {
		t.Fatal(err)
	}
	want := []byte{0, 1, 0, 0, 0, 5, 0, 0, 0, 9, 0, 0, 0, 13, 0, 0}
	if !bytes.Equal(dst, want) {
		t.Fatalf("dst = %v, want %v", dst, want)
	}
}

func TestTypeContiguous(t *testing.T) {
	ct, err := mpi.TypeContiguous(3, mpi.Int64)
	if err != nil {
		t.Fatal(err)
	}
	if ct.Size() != 24 || ct.Extent() != 24 {
		t.Fatalf("size=%d extent=%d", ct.Size(), ct.Extent())
	}
	src := mpi.PackInt64s([]int64{7, 8, 9})
	packed, err := ct.Pack(src)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(packed, src) {
		t.Fatal("contiguous pack must be identity")
	}
}

func TestDerivedTypeValidation(t *testing.T) {
	if _, err := mpi.TypeVector(0, 1, 1, mpi.Byte); err == nil {
		t.Fatal("zero count accepted")
	}
	if _, err := mpi.TypeVector(2, 3, 2, mpi.Byte); err == nil {
		t.Fatal("overlapping stride accepted")
	}
	if _, err := mpi.TypeContiguous(-1, mpi.Byte); err == nil {
		t.Fatal("negative count accepted")
	}
	v, err := mpi.TypeVector(4, 1, 4, mpi.Byte)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.Pack(make([]byte, 3)); err == nil {
		t.Fatal("short pack source accepted")
	}
	if err := v.Unpack(make([]byte, 3), make([]byte, 4)); err == nil {
		t.Fatal("short unpack destination accepted")
	}
	if err := v.Unpack(make([]byte, 16), make([]byte, 1)); err == nil {
		t.Fatal("short packed input accepted")
	}
}

func TestQuickPackUnpackRoundTrip(t *testing.T) {
	f := func(countRaw, blockRaw, padRaw uint8, seed int64) bool {
		count := 1 + int(countRaw%8)
		blocklen := 1 + int(blockRaw%8)
		stride := blocklen + int(padRaw%8)
		dt, err := mpi.TypeVector(count, blocklen, stride, mpi.Byte)
		if err != nil {
			return false
		}
		src := make([]byte, dt.Extent())
		x := seed
		for i := range src {
			x = x*6364136223846793005 + 1442695040888963407
			src[i] = byte(x >> 32)
		}
		packed, err := dt.Pack(src)
		if err != nil || len(packed) != dt.Size() {
			return false
		}
		dst := make([]byte, dt.Extent())
		if err := dt.Unpack(dst, packed); err != nil {
			return false
		}
		// Re-pack the unpacked layout: must equal the original packed data.
		again, err := dt.Pack(dst)
		if err != nil {
			return false
		}
		return bytes.Equal(packed, again)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestColumnExchange sends grid columns between ranks using typed
// send/recv — the use case derived datatypes exist for.
func TestColumnExchange(t *testing.T) {
	withWorld(t, 1, 2, exCfg(), func(p *mpi.Process, world *mpi.Comm) error {
		const n = 5
		grid := make([]byte, n*n)
		for i := range grid {
			grid[i] = byte(world.Rank()*100 + i)
		}
		col, err := mpi.TypeVector(n, 1, n, mpi.Byte)
		if err != nil {
			return err
		}
		peer := 1 - world.Rank()
		if world.Rank() == 0 {
			// Send my last column; receive peer's first column into mine.
			if err := world.SendTyped(grid[n-1:], col, peer, 1); err != nil {
				return err
			}
			if _, err := world.RecvTyped(grid[0:], col, peer, 2); err != nil {
				return err
			}
			for r := 0; r < n; r++ {
				if grid[r*n] != byte(100+r*n) {
					return fmt.Errorf("row %d col 0 = %d", r, grid[r*n])
				}
			}
		} else {
			// Receive peer's last column into my last; send my first.
			if err := world.SendTyped(grid[0:], col, peer, 2); err != nil {
				return err
			}
			if _, err := world.RecvTyped(grid[n-1:], col, peer, 1); err != nil {
				return err
			}
			for r := 0; r < n; r++ {
				if grid[r*n+n-1] != byte(r*n+n-1) {
					return fmt.Errorf("row %d last col = %d", r, grid[r*n+n-1])
				}
			}
		}
		return nil
	})
}
