package mpi_test

import (
	"errors"
	"fmt"
	"testing"

	"gompi/internal/core"
	"gompi/mpi"
)

func TestCommDupConsensusMode(t *testing.T) {
	withWorld(t, 2, 2, conCfg(), func(p *mpi.Process, world *mpi.Comm) error {
		dup, err := world.Dup()
		if err != nil {
			return err
		}
		if dup.UsesExCID() {
			return fmt.Errorf("consensus dup should not use exCID")
		}
		if dup.Size() != world.Size() || dup.Rank() != world.Rank() {
			return fmt.Errorf("dup shape mismatch")
		}
		// Consensus guarantees a globally consistent CID: verify by
		// allreducing (cid, ^cid) and checking max == min.
		v := uint32(dup.LocalCID())
		in := mpi.PackUint32s([]uint32{v, ^v})
		out := make([]byte, 8)
		if err := world.Allreduce(in, out, 2, mpi.Uint32, mpi.OpMax); err != nil {
			return err
		}
		r := mpi.UnpackUint32s(out)
		if r[0] != ^r[1] {
			return fmt.Errorf("consensus CIDs inconsistent: max %d min %d", r[0], ^r[1])
		}
		// Traffic on the dup works and is isolated from world.
		sum, err := dup.AllreduceInt64(1, mpi.OpSum)
		if err != nil {
			return err
		}
		if sum != int64(dup.Size()) {
			return fmt.Errorf("sum = %d", sum)
		}
		if err := dup.Free(); err != nil {
			return err
		}
		if _, err := dup.Dup(); !errors.Is(err, mpi.ErrCommFreed) {
			return fmt.Errorf("dup of freed comm: %v", err)
		}
		return nil
	})
}

func TestCommDupExCIDPrototypeMode(t *testing.T) {
	// Default prototype behaviour: every dup acquires a fresh PGCID.
	run(t, 2, 2, exCfg(), func(p *mpi.Process) error {
		sess, err := p.SessionInit(nil, nil)
		if err != nil {
			return err
		}
		grp, err := sess.GroupFromPset(mpi.PsetWorld)
		if err != nil {
			return err
		}
		comm, err := sess.CommCreateFromGroup(grp, "dup-base", nil, nil)
		if err != nil {
			return err
		}
		d1, err := comm.Dup()
		if err != nil {
			return err
		}
		d2, err := comm.Dup()
		if err != nil {
			return err
		}
		if d1.ExCID().PGCID == comm.ExCID().PGCID || d2.ExCID().PGCID == d1.ExCID().PGCID {
			return fmt.Errorf("prototype dup should allocate fresh PGCIDs: %v %v %v",
				comm.ExCID(), d1.ExCID(), d2.ExCID())
		}
		sum, err := d2.AllreduceInt64(2, mpi.OpSum)
		if err != nil {
			return err
		}
		if sum != 8 {
			return fmt.Errorf("sum = %d", sum)
		}
		for _, c := range []*mpi.Comm{d2, d1, comm} {
			if err := c.Free(); err != nil {
				return err
			}
		}
		return sess.Finalize()
	})
}

func TestCommDupExCIDSubfieldMode(t *testing.T) {
	// The §III-B3 optimization: derived communicators reuse the parent's
	// PGCID via the 8-bit subfields, with no runtime round-trip.
	cfg := core.Config{CIDMode: core.CIDExtended, DupUseSubfields: true}
	run(t, 2, 2, cfg, func(p *mpi.Process) error {
		sess, err := p.SessionInit(nil, nil)
		if err != nil {
			return err
		}
		grp, err := sess.GroupFromPset(mpi.PsetWorld)
		if err != nil {
			return err
		}
		comm, err := sess.CommCreateFromGroup(grp, "dup-sub", nil, nil)
		if err != nil {
			return err
		}
		var comms []*mpi.Comm
		prev := comm
		for i := 0; i < 5; i++ {
			d, err := prev.Dup()
			if err != nil {
				return fmt.Errorf("dup %d: %w", i, err)
			}
			if d.ExCID().PGCID != comm.ExCID().PGCID {
				return fmt.Errorf("dup %d changed PGCID: %v vs %v", i, d.ExCID(), comm.ExCID())
			}
			if d.ExCID() == prev.ExCID() {
				return fmt.Errorf("dup %d: exCID not unique", i)
			}
			comms = append(comms, d)
			prev = d
		}
		// Each derived communicator works.
		for i, d := range comms {
			sum, err := d.AllreduceInt64(1, mpi.OpSum)
			if err != nil {
				return fmt.Errorf("comm %d: %w", i, err)
			}
			if sum != 4 {
				return fmt.Errorf("comm %d sum = %d", i, sum)
			}
		}
		for i := len(comms) - 1; i >= 0; i-- {
			if err := comms[i].Free(); err != nil {
				return err
			}
		}
		if err := comm.Free(); err != nil {
			return err
		}
		return sess.Finalize()
	})
}

func TestCommSplit(t *testing.T) {
	for _, cfg := range []core.Config{conCfg(), exCfg()} {
		cfg := cfg
		t.Run(cfg.CIDMode.String(), func(t *testing.T) {
			withWorld(t, 2, 2, cfg, func(p *mpi.Process, world *mpi.Comm) error {
				color := world.Rank() % 2
				sub, err := world.Split(color, world.Rank())
				if err != nil {
					return err
				}
				if sub.Size() != 2 {
					return fmt.Errorf("sub size = %d", sub.Size())
				}
				// Even ranks 0,2 -> subranks 0,1; odd ranks 1,3 -> 0,1.
				wantRank := world.Rank() / 2
				if sub.Rank() != wantRank {
					return fmt.Errorf("sub rank = %d, want %d", sub.Rank(), wantRank)
				}
				sum, err := sub.AllreduceInt64(int64(world.Rank()), mpi.OpSum)
				if err != nil {
					return err
				}
				want := int64(0 + 2)
				if color == 1 {
					want = 1 + 3
				}
				if sum != want {
					return fmt.Errorf("color %d sum = %d, want %d", color, sum, want)
				}
				return sub.Free()
			})
		})
	}
}

func TestCommSplitUndefined(t *testing.T) {
	for _, cfg := range []core.Config{conCfg(), exCfg()} {
		cfg := cfg
		t.Run(cfg.CIDMode.String(), func(t *testing.T) {
			withWorld(t, 1, 4, cfg, func(p *mpi.Process, world *mpi.Comm) error {
				color := 0
				if world.Rank() == 3 {
					color = mpi.Undefined
				}
				sub, err := world.Split(color, 0)
				if err != nil {
					return err
				}
				if world.Rank() == 3 {
					if sub != nil {
						return fmt.Errorf("undefined color should yield nil comm")
					}
					return nil
				}
				if sub.Size() != 3 {
					return fmt.Errorf("sub size = %d", sub.Size())
				}
				if err := sub.Barrier(); err != nil {
					return err
				}
				return sub.Free()
			})
		})
	}
}

func TestCommSplitKeyOrdering(t *testing.T) {
	withWorld(t, 1, 4, exCfg(), func(p *mpi.Process, world *mpi.Comm) error {
		// Reverse the rank order via the key.
		sub, err := world.Split(0, -world.Rank())
		if err != nil {
			return err
		}
		wantRank := world.Size() - 1 - world.Rank()
		if sub.Rank() != wantRank {
			return fmt.Errorf("sub rank = %d, want %d", sub.Rank(), wantRank)
		}
		return sub.Free()
	})
}

func TestCommCreateGroup(t *testing.T) {
	withWorld(t, 2, 2, exCfg(), func(p *mpi.Process, world *mpi.Comm) error {
		grp := world.Group()
		odd, err := grp.Incl([]int{1, 3})
		if err != nil {
			return err
		}
		if world.Rank()%2 == 0 {
			// Non-members do not call: create_group is collective only over
			// the subgroup (§III-B3).
			return nil
		}
		sub, err := world.CreateGroup(odd, 42)
		if err != nil {
			return err
		}
		if sub.Size() != 2 {
			return fmt.Errorf("size = %d", sub.Size())
		}
		sum, err := sub.AllreduceInt64(int64(world.Rank()), mpi.OpSum)
		if err != nil {
			return err
		}
		if sum != 4 {
			return fmt.Errorf("sum = %d", sum)
		}
		return sub.Free()
	})
}

func TestCommCompareAndAttrs(t *testing.T) {
	withWorld(t, 1, 2, exCfg(), func(p *mpi.Process, world *mpi.Comm) error {
		if world.Compare(world) != mpi.Ident {
			return fmt.Errorf("world != world")
		}
		dup, err := world.Dup()
		if err != nil {
			return err
		}
		defer dup.Free()
		if world.Compare(dup) != mpi.Congruent {
			return fmt.Errorf("dup should be Congruent")
		}
		kv := p.KeyvalCreate()
		world.AttrSet(kv, 123)
		if v, ok := world.AttrGet(kv); !ok || v != 123 {
			return fmt.Errorf("attr = %v,%v", v, ok)
		}
		if _, ok := dup.AttrGet(kv); ok {
			return fmt.Errorf("attributes must not propagate to dup")
		}
		world.AttrDelete(kv)
		if _, ok := world.AttrGet(kv); ok {
			return fmt.Errorf("attr survived delete")
		}
		world.SetName("my-world")
		if world.Name() != "my-world" {
			return fmt.Errorf("name = %q", world.Name())
		}
		return nil
	})
}

func TestCommP2PValidation(t *testing.T) {
	withWorld(t, 1, 2, exCfg(), func(p *mpi.Process, world *mpi.Comm) error {
		if err := world.Send(nil, 9, 0); err == nil {
			return fmt.Errorf("send to invalid rank should fail")
		}
		if _, err := world.Recv(nil, 9, 0); err == nil {
			return fmt.Errorf("recv from invalid rank should fail")
		}
		if err := mpi.WaitAll(world.Isend(nil, -3, 0)); err == nil {
			return fmt.Errorf("isend to negative rank should fail")
		}
		return nil
	})
}

func TestProbeAtMPILevel(t *testing.T) {
	withWorld(t, 1, 2, exCfg(), func(p *mpi.Process, world *mpi.Comm) error {
		if world.Rank() == 0 {
			return world.Send([]byte("xyz"), 1, 3)
		}
		st, err := world.Probe(0, 3)
		if err != nil {
			return err
		}
		if st.Count != 3 || st.Tag != 3 {
			return fmt.Errorf("probe st = %+v", st)
		}
		buf := make([]byte, st.Count)
		if _, err := world.Recv(buf, st.Source, st.Tag); err != nil {
			return err
		}
		if string(buf) != "xyz" {
			return fmt.Errorf("buf = %q", buf)
		}
		_, ok, err := world.Iprobe(0, 99)
		if err != nil {
			return err
		}
		if ok {
			return fmt.Errorf("iprobe matched nothing pending")
		}
		return nil
	})
}
