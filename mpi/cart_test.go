package mpi_test

import (
	"fmt"
	"testing"

	"gompi/mpi"
)

func TestDimsCreate(t *testing.T) {
	cases := []struct {
		nnodes, ndims int
		fixed         []int
		want          []int
	}{
		{12, 2, nil, []int{4, 3}},
		{8, 3, nil, []int{2, 2, 2}},
		{7, 2, nil, []int{7, 1}},
		{12, 2, []int{0, 2}, []int{6, 2}},
		{16, 1, nil, []int{16}},
	}
	for _, c := range cases {
		got, err := mpi.DimsCreate(c.nnodes, c.ndims, c.fixed)
		if err != nil {
			t.Fatalf("DimsCreate(%d,%d,%v): %v", c.nnodes, c.ndims, c.fixed, err)
		}
		prod := 1
		for i, d := range got {
			prod *= d
			if c.want != nil && got[i] != c.want[i] {
				t.Errorf("DimsCreate(%d,%d,%v) = %v, want %v", c.nnodes, c.ndims, c.fixed, got, c.want)
				break
			}
		}
		if prod != c.nnodes {
			t.Errorf("DimsCreate(%d,...) = %v: product %d", c.nnodes, got, prod)
		}
	}
	if _, err := mpi.DimsCreate(10, 2, []int{3, 0}); err == nil {
		t.Fatal("non-dividing fixed dim accepted")
	}
	if _, err := mpi.DimsCreate(10, 2, []int{-1, 0}); err == nil {
		t.Fatal("negative dim accepted")
	}
	if _, err := mpi.DimsCreate(10, 2, []int{5, 3}); err == nil {
		t.Fatal("non-multiplying fixed dims accepted")
	}
}

func TestCartCoordsRankRoundTrip(t *testing.T) {
	withWorld(t, 1, 6, exCfg(), func(p *mpi.Process, world *mpi.Comm) error {
		cart, err := world.CartCreate([]int{2, 3}, []bool{false, true}, false)
		if err != nil {
			return err
		}
		defer cart.Free()
		for r := 0; r < cart.Size(); r++ {
			coords, err := cart.Coords(r)
			if err != nil {
				return err
			}
			back, err := cart.CartRank(coords)
			if err != nil {
				return err
			}
			if back != r {
				return fmt.Errorf("rank %d -> %v -> %d", r, coords, back)
			}
		}
		// Periodic wrap in dim 1.
		r, err := cart.CartRank([]int{0, -1})
		if err != nil {
			return err
		}
		if r != 2 { // (0,2)
			return fmt.Errorf("wrapped rank = %d, want 2", r)
		}
		// Non-periodic out of range in dim 0.
		if _, err := cart.CartRank([]int{2, 0}); err == nil {
			return fmt.Errorf("out-of-range non-periodic coordinate accepted")
		}
		return nil
	})
}

func TestCartShiftAndProcNull(t *testing.T) {
	withWorld(t, 1, 4, exCfg(), func(p *mpi.Process, world *mpi.Comm) error {
		// 1-D non-periodic chain of 4.
		cart, err := world.CartCreate([]int{4}, []bool{false}, false)
		if err != nil {
			return err
		}
		defer cart.Free()
		src, dst, err := cart.Shift(0, 1)
		if err != nil {
			return err
		}
		switch cart.Rank() {
		case 0:
			if src != mpi.ProcNull || dst != 1 {
				return fmt.Errorf("rank 0 shift = %d,%d", src, dst)
			}
		case 3:
			if src != 2 || dst != mpi.ProcNull {
				return fmt.Errorf("rank 3 shift = %d,%d", src, dst)
			}
		default:
			if src != cart.Rank()-1 || dst != cart.Rank()+1 {
				return fmt.Errorf("rank %d shift = %d,%d", cart.Rank(), src, dst)
			}
		}
		return nil
	})
}

func TestCartShiftPeriodicRing(t *testing.T) {
	withWorld(t, 1, 4, exCfg(), func(p *mpi.Process, world *mpi.Comm) error {
		cart, err := world.CartCreate([]int{4}, []bool{true}, false)
		if err != nil {
			return err
		}
		defer cart.Free()
		src, dst, err := cart.Shift(0, 1)
		if err != nil {
			return err
		}
		wantSrc := (cart.Rank() + 3) % 4
		wantDst := (cart.Rank() + 1) % 4
		if src != wantSrc || dst != wantDst {
			return fmt.Errorf("rank %d shift = %d,%d want %d,%d", cart.Rank(), src, dst, wantSrc, wantDst)
		}
		return nil
	})
}

func TestCartHaloExchange(t *testing.T) {
	withWorld(t, 2, 2, exCfg(), func(p *mpi.Process, world *mpi.Comm) error {
		// 1-D non-periodic chain; halo exchange with both neighbours.
		cart, err := world.CartCreate([]int{4}, []bool{false}, false)
		if err != nil {
			return err
		}
		defer cart.Free()
		me := byte(cart.Rank())
		sendUp := []byte{me}
		sendDown := []byte{me + 100}
		recvDown := []byte{255}
		recvUp := []byte{255}
		if err := cart.SendrecvShift(0, 1, sendUp, recvDown, sendDown, recvUp, 50); err != nil {
			return err
		}
		src, dst, err := cart.Shift(0, 1)
		if err != nil {
			return err
		}
		if src != mpi.ProcNull {
			if recvDown[0] != byte(src) {
				return fmt.Errorf("rank %d recvDown = %d, want %d", cart.Rank(), recvDown[0], src)
			}
		} else if recvDown[0] != 255 {
			return fmt.Errorf("rank %d recvDown modified with no neighbour", cart.Rank())
		}
		if dst != mpi.ProcNull {
			if recvUp[0] != byte(dst)+100 {
				return fmt.Errorf("rank %d recvUp = %d, want %d", cart.Rank(), recvUp[0], byte(dst)+100)
			}
		} else if recvUp[0] != 255 {
			return fmt.Errorf("rank %d recvUp modified with no neighbour", cart.Rank())
		}
		return nil
	})
}

func TestCartCreateValidation(t *testing.T) {
	withWorld(t, 1, 4, exCfg(), func(p *mpi.Process, world *mpi.Comm) error {
		if _, err := world.CartCreate([]int{3}, []bool{false}, false); err == nil {
			return fmt.Errorf("grid/size mismatch accepted")
		}
		if _, err := world.CartCreate([]int{2, 2}, []bool{false}, false); err == nil {
			return fmt.Errorf("dims/periods mismatch accepted")
		}
		if _, err := world.CartCreate([]int{-4}, []bool{false}, false); err == nil {
			return fmt.Errorf("negative dim accepted")
		}
		return nil
	})
}

func TestCommCreateSubset(t *testing.T) {
	for _, mode := range []string{"consensus", "excid"} {
		mode := mode
		t.Run(mode, func(t *testing.T) {
			cfg := conCfg()
			if mode == "excid" {
				cfg = exCfg()
			}
			withWorld(t, 1, 4, cfg, func(p *mpi.Process, world *mpi.Comm) error {
				grp := world.Group()
				evens, err := grp.Incl([]int{0, 2})
				if err != nil {
					return err
				}
				sub, err := world.Create(evens)
				if err != nil {
					return err
				}
				if world.Rank()%2 == 1 {
					if sub != nil {
						return fmt.Errorf("non-member got a communicator")
					}
					return nil
				}
				defer sub.Free()
				if sub.Size() != 2 {
					return fmt.Errorf("size = %d", sub.Size())
				}
				sum, err := sub.AllreduceInt64(int64(world.Rank()), mpi.OpSum)
				if err != nil {
					return err
				}
				if sum != 2 {
					return fmt.Errorf("sum = %d", sum)
				}
				return nil
			})
		})
	}
}

func TestCommSplitTypeShared(t *testing.T) {
	withWorld(t, 2, 3, exCfg(), func(p *mpi.Process, world *mpi.Comm) error {
		node, err := world.SplitType(mpi.SplitTypeShared, world.Rank())
		if err != nil {
			return err
		}
		defer node.Free()
		if node.Size() != 3 {
			return fmt.Errorf("node comm size = %d, want 3 (ppn)", node.Size())
		}
		// All members of the node comm share my node: verify with shared
		// pset from a session... simpler: their global ranks are a
		// contiguous block of 3 starting at a multiple of 3.
		g := node.Group().GlobalRanks()
		base := g[0]
		if base%3 != 0 {
			return fmt.Errorf("node block starts at %d", base)
		}
		for i, r := range g {
			if r != base+i {
				return fmt.Errorf("node ranks = %v", g)
			}
		}
		return nil
	})
}

func TestGroupRangeInclExcl(t *testing.T) {
	withWorld(t, 1, 8, exCfg(), func(p *mpi.Process, world *mpi.Comm) error {
		grp := world.Group()
		in, err := grp.RangeIncl([][3]int{{0, 6, 2}}) // 0,2,4,6
		if err != nil {
			return err
		}
		if in.Size() != 4 || in.GlobalRanks()[1] != 2 {
			return fmt.Errorf("RangeIncl = %v", in.GlobalRanks())
		}
		down, err := grp.RangeIncl([][3]int{{7, 5, -1}}) // 7,6,5
		if err != nil {
			return err
		}
		if down.Size() != 3 || down.GlobalRanks()[0] != 7 {
			return fmt.Errorf("descending RangeIncl = %v", down.GlobalRanks())
		}
		ex, err := grp.RangeExcl([][3]int{{0, 7, 2}}) // drop evens
		if err != nil {
			return err
		}
		if ex.Size() != 4 || ex.GlobalRanks()[0] != 1 {
			return fmt.Errorf("RangeExcl = %v", ex.GlobalRanks())
		}
		if _, err := grp.RangeIncl([][3]int{{0, 4, 0}}); err == nil {
			return fmt.Errorf("zero stride accepted")
		}
		return nil
	})
}

func TestIdup(t *testing.T) {
	withWorld(t, 1, 2, exCfg(), func(p *mpi.Process, world *mpi.Comm) error {
		req, ch, err := world.Idup()
		if err != nil {
			return err
		}
		if _, err := req.Wait(); err != nil {
			return err
		}
		dup := <-ch
		defer dup.Free()
		if dup.Size() != world.Size() {
			return fmt.Errorf("idup size = %d", dup.Size())
		}
		return dup.Barrier()
	})
}
