package mpi

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
)

// RMA window support. As in the prototype (§III-B6), windows created from a
// group first build an intermediate communicator with
// MPI_Comm_create_from_group, then apply the MPI-3 creation path with that
// parent communicator; the window keeps a private duplicate so its traffic
// never interferes with application messages.
//
// The implementation uses an active-target model: Put/Get/Accumulate are
// serviced by a per-window goroutine at the target (origin calls complete
// when the target has applied them), and Fence is a barrier over the
// window's communicator.

// Window RMA message kinds.
const (
	winOpPut = iota + 1
	winOpGet
	winOpAcc
	winOpStop
)

const (
	winTagReq = -1000003
	winTagAck = -1000007
)

// ErrWinFreed is returned when using a freed window.
var ErrWinFreed = errors.New("mpi: window has been freed")

// Win is an RMA window: a region of each member's memory exposed for
// one-sided access (MPI_Win).
type Win struct {
	comm *Comm
	base []byte

	mu          sync.Mutex
	baseMu      sync.Mutex
	freed       bool
	svcDone     chan struct{}
	syncState   *winSync
	accessGroup []int // targets of the current Start epoch (global ranks)
}

// WinCreateFromGroup creates a window over the processes of group
// (MPI_Win_create_from_group): localSize bytes of this process's memory are
// exposed. Collective over the group.
func (s *Session) WinCreateFromGroup(group *Group, tag string, localSize int) (*Win, error) {
	if err := s.checkLive(); err != nil {
		return nil, s.errh.invoke(err)
	}
	// Intermediate communicator, as the prototype does.
	inter, err := s.CommCreateFromGroup(group, "win/"+tag, nil, nil)
	if err != nil {
		return nil, err
	}
	w, err := WinCreate(inter, localSize)
	if err != nil {
		_ = inter.Free()
		return nil, s.errh.invoke(err)
	}
	// The intermediate communicator is freed; the window holds its own dup.
	if err := inter.Free(); err != nil {
		return nil, s.errh.invoke(err)
	}
	return w, nil
}

// WinAllocateFromGroup creates a window directly from a group, with no
// intermediate communicator: the paper's prototype constructed windows by
// building a temporary communicator, calling the MPI-3 path, and freeing
// it (§III-B6), and names eliminating that intermediate as future work —
// this constructor implements it. One communicator creation instead of
// two (create + dup). Collective over the group.
func (s *Session) WinAllocateFromGroup(group *Group, tag string, localSize int) (*Win, error) {
	if err := s.checkLive(); err != nil {
		return nil, s.errh.invoke(err)
	}
	priv, err := s.CommCreateFromGroup(group, "winalloc/"+tag, nil, nil)
	if err != nil {
		return nil, err
	}
	w, err := newWinOn(priv, localSize)
	if err != nil {
		_ = priv.Free()
		return nil, s.errh.invoke(err)
	}
	return w, nil
}

// WinCreate creates a window over an existing communicator (MPI_Win_create).
// Collective over the communicator.
func WinCreate(comm *Comm, localSize int) (*Win, error) {
	priv, err := comm.Dup()
	if err != nil {
		return nil, err
	}
	w, err := newWinOn(priv, localSize)
	if err != nil {
		_ = priv.Free()
		return nil, err
	}
	return w, nil
}

// newWinOn wires a window onto a private communicator the window owns.
func newWinOn(priv *Comm, localSize int) (*Win, error) {
	w := &Win{
		comm:    priv,
		base:    make([]byte, localSize),
		svcDone: make(chan struct{}),
	}
	go w.service()
	go w.lockService()
	go w.unlockService()
	// Creation is collective; synchronize so no origin races a target whose
	// service is not yet running.
	if err := priv.Barrier(); err != nil {
		w.stopService()
		return nil, err
	}
	return w, nil
}

// Comm returns the window's private communicator (diagnostics).
func (w *Win) Comm() *Comm { return w.comm }

// Size returns the size of the local exposed region.
func (w *Win) Size() int { return len(w.base) }

// Local returns the local exposed region. The caller must synchronize
// access with Fence epochs, as in MPI.
func (w *Win) Local() []byte { return w.base }

// service handles incoming RMA operations until a stop message arrives.
func (w *Win) service() {
	defer close(w.svcDone)
	hdr := make([]byte, 17+len(w.base)+64)
	for {
		st, err := w.comm.ch.Recv(AnySource, winTagReq, hdr)
		if err != nil {
			return
		}
		req := hdr[:st.Count]
		op := req[0]
		if op == winOpStop {
			return
		}
		offset := int(binary.LittleEndian.Uint64(req[1:]))
		length := int(binary.LittleEndian.Uint64(req[9:]))
		switch op {
		case winOpPut:
			w.baseMu.Lock()
			if offset >= 0 && offset+length <= len(w.base) {
				copy(w.base[offset:], req[17:17+length])
			}
			w.baseMu.Unlock()
			_ = w.comm.ch.Send(st.Source, winTagAck, []byte{1})
		case winOpGet:
			out := make([]byte, length)
			w.baseMu.Lock()
			if offset >= 0 && offset+length <= len(w.base) {
				copy(out, w.base[offset:offset+length])
			}
			w.baseMu.Unlock()
			_ = w.comm.ch.Send(st.Source, winTagAck, out)
		case winOpAcc:
			// req[17] carries the op; payload are int64 elements.
			aop := Op(req[17])
			w.baseMu.Lock()
			if offset >= 0 && offset+length <= len(w.base) {
				_ = reduce(aop, Int64, w.base[offset:offset+length], req[18:18+length], length/8)
			}
			w.baseMu.Unlock()
			_ = w.comm.ch.Send(st.Source, winTagAck, []byte{1})
		}
	}
}

func (w *Win) checkTarget(target, offset, length int) error {
	w.mu.Lock()
	freed := w.freed
	w.mu.Unlock()
	if freed {
		return ErrWinFreed
	}
	if target < 0 || target >= w.comm.Size() {
		return fmt.Errorf("mpi: window target %d out of range [0,%d)", target, w.comm.Size())
	}
	if offset < 0 || length < 0 {
		return fmt.Errorf("mpi: negative window offset/length")
	}
	return nil
}

// Put writes data into the target's exposed region at offset (MPI_Put).
// The call completes when the target has applied the update.
func (w *Win) Put(target, offset int, data []byte) error {
	if err := w.checkTarget(target, offset, len(data)); err != nil {
		return err
	}
	if target == w.comm.Rank() {
		w.baseMu.Lock()
		defer w.baseMu.Unlock()
		if offset+len(data) > len(w.base) {
			return fmt.Errorf("mpi: put beyond window bounds")
		}
		copy(w.base[offset:], data)
		return nil
	}
	req := make([]byte, 17+len(data))
	req[0] = winOpPut
	binary.LittleEndian.PutUint64(req[1:], uint64(offset))
	binary.LittleEndian.PutUint64(req[9:], uint64(len(data)))
	copy(req[17:], data)
	if err := w.comm.ch.Send(target, winTagReq, req); err != nil {
		return err
	}
	var ack [1]byte
	_, err := w.comm.ch.Recv(target, winTagAck, ack[:])
	return err
}

// Get reads the target's exposed region at offset into buf (MPI_Get).
func (w *Win) Get(target, offset int, buf []byte) error {
	if err := w.checkTarget(target, offset, len(buf)); err != nil {
		return err
	}
	if target == w.comm.Rank() {
		w.baseMu.Lock()
		defer w.baseMu.Unlock()
		if offset+len(buf) > len(w.base) {
			return fmt.Errorf("mpi: get beyond window bounds")
		}
		copy(buf, w.base[offset:])
		return nil
	}
	req := make([]byte, 17)
	req[0] = winOpGet
	binary.LittleEndian.PutUint64(req[1:], uint64(offset))
	binary.LittleEndian.PutUint64(req[9:], uint64(len(buf)))
	if err := w.comm.ch.Send(target, winTagReq, req); err != nil {
		return err
	}
	_, err := w.comm.ch.Recv(target, winTagAck, buf)
	return err
}

// Accumulate applies op element-wise (int64 elements) into the target's
// region (MPI_Accumulate). data length must be a multiple of 8.
func (w *Win) Accumulate(target, offset int, data []byte, op Op) error {
	if err := w.checkTarget(target, offset, len(data)); err != nil {
		return err
	}
	if len(data)%8 != 0 {
		return fmt.Errorf("mpi: accumulate payload must be int64-aligned")
	}
	if target == w.comm.Rank() {
		w.baseMu.Lock()
		defer w.baseMu.Unlock()
		if offset+len(data) > len(w.base) {
			return fmt.Errorf("mpi: accumulate beyond window bounds")
		}
		return reduce(op, Int64, w.base[offset:offset+len(data)], data, len(data)/8)
	}
	req := make([]byte, 18+len(data))
	req[0] = winOpAcc
	binary.LittleEndian.PutUint64(req[1:], uint64(offset))
	binary.LittleEndian.PutUint64(req[9:], uint64(len(data)))
	req[17] = byte(op)
	copy(req[18:], data)
	if err := w.comm.ch.Send(target, winTagReq, req); err != nil {
		return err
	}
	var ack [1]byte
	_, err := w.comm.ch.Recv(target, winTagAck, ack[:])
	return err
}

// Fence separates RMA access epochs (MPI_Win_fence): all operations issued
// before the fence are complete at their targets when it returns.
func (w *Win) Fence() error {
	w.mu.Lock()
	freed := w.freed
	w.mu.Unlock()
	if freed {
		return ErrWinFreed
	}
	// Operations complete synchronously at the target, so a barrier
	// suffices for epoch separation.
	return w.comm.Barrier()
}

func (w *Win) stopService() {
	stop := []byte{winOpStop}
	// Self-send wakes the service loop.
	_ = w.comm.ch.Send(w.comm.Rank(), winTagReq, stop)
	<-w.svcDone
}

// Free releases the window (MPI_Win_free). Collective.
func (w *Win) Free() error {
	w.mu.Lock()
	if w.freed {
		w.mu.Unlock()
		return ErrWinFreed
	}
	w.freed = true
	w.mu.Unlock()
	// Ensure no outstanding operations target us, then stop the service.
	if err := w.comm.Barrier(); err != nil {
		return err
	}
	w.stopService()
	return w.comm.Free()
}
