package mpi_test

import (
	"errors"
	"fmt"
	"testing"

	"gompi/mpi"
)

func TestPersistentHaloPattern(t *testing.T) {
	withWorld(t, 2, 2, exCfg(), func(p *mpi.Process, world *mpi.Comm) error {
		n := world.Size()
		me := world.Rank()
		right := (me + 1) % n
		left := (me - 1 + n) % n
		out := make([]byte, 4)
		in := make([]byte, 4)

		sreq, err := world.SendInit(out, right, 7)
		if err != nil {
			return err
		}
		rreq, err := world.RecvInit(in, left, 7)
		if err != nil {
			return err
		}
		for iter := 0; iter < 5; iter++ {
			for i := range out {
				out[i] = byte(me*16 + iter)
			}
			if err := mpi.StartAll(rreq, sreq); err != nil {
				return fmt.Errorf("iter %d: %w", iter, err)
			}
			if err := mpi.WaitAllPersistent(sreq, rreq); err != nil {
				return fmt.Errorf("iter %d: %w", iter, err)
			}
			for i := range in {
				if in[i] != byte(left*16+iter) {
					return fmt.Errorf("iter %d byte %d = %d", iter, i, in[i])
				}
			}
		}
		return nil
	})
}

func TestPersistentDoubleStartFails(t *testing.T) {
	withWorld(t, 1, 2, exCfg(), func(p *mpi.Process, world *mpi.Comm) error {
		if world.Rank() == 1 {
			return world.Barrier()
		}
		// Recv with no matching send stays active.
		req, err := world.RecvInit(make([]byte, 1), 1, 99)
		if err != nil {
			return err
		}
		if err := req.Start(); err != nil {
			return err
		}
		if err := req.Start(); !errors.Is(err, mpi.ErrActive) {
			return fmt.Errorf("double start: %v", err)
		}
		if _, _, err := req.Test(); err != nil {
			return err
		}
		return world.Barrier()
	})
}

func TestPersistentWaitBeforeStartFails(t *testing.T) {
	withWorld(t, 1, 2, exCfg(), func(p *mpi.Process, world *mpi.Comm) error {
		req, err := world.SendInit(nil, (world.Rank()+1)%2, 1)
		if err != nil {
			return err
		}
		if _, err := req.Wait(); err == nil {
			return fmt.Errorf("wait before start should fail")
		}
		return nil
	})
}

func TestPersistentSsend(t *testing.T) {
	withWorld(t, 1, 2, exCfg(), func(p *mpi.Process, world *mpi.Comm) error {
		if world.Rank() == 0 {
			req, err := world.SsendInit([]byte("pp"), 1, 4)
			if err != nil {
				return err
			}
			for i := 0; i < 3; i++ {
				if err := req.Start(); err != nil {
					return err
				}
				if _, err := req.Wait(); err != nil {
					return err
				}
			}
			return nil
		}
		buf := make([]byte, 2)
		for i := 0; i < 3; i++ {
			if _, err := world.Recv(buf, 0, 4); err != nil {
				return err
			}
			if string(buf) != "pp" {
				return fmt.Errorf("iter %d: %q", i, buf)
			}
		}
		return nil
	})
}

func TestWaitanyAndTestall(t *testing.T) {
	withWorld(t, 1, 2, exCfg(), func(p *mpi.Process, world *mpi.Comm) error {
		if world.Rank() == 1 {
			// Send only on tag 2; tag-3 recv at rank 0 stays pending.
			if err := world.Send([]byte{9}, 0, 2); err != nil {
				return err
			}
			if err := world.Send([]byte{8}, 0, 3); err != nil {
				return err
			}
			return nil
		}
		b2 := make([]byte, 1)
		b3 := make([]byte, 1)
		reqs := []mpi.Request{nil, world.Irecv(b2, 1, 2), world.Irecv(b3, 1, 3)}
		i, st, err := mpi.Waitany(reqs)
		if err != nil {
			return err
		}
		if i != 1 && i != 2 {
			return fmt.Errorf("waitany index = %d", i)
		}
		if st.Source != 1 {
			return fmt.Errorf("waitany status = %+v", st)
		}
		// Eventually all complete.
		for {
			done, err := mpi.Testall(reqs)
			if err != nil {
				return err
			}
			if done {
				break
			}
		}
		if b2[0] != 9 || b3[0] != 8 {
			return fmt.Errorf("payloads = %d %d", b2[0], b3[0])
		}
		if i, _, _ := mpi.Waitany([]mpi.Request{nil, nil}); i != mpi.Undefined {
			return fmt.Errorf("all-nil waitany = %d", i)
		}
		return nil
	})
}

func TestUserDefinedOp(t *testing.T) {
	withWorld(t, 1, 4, exCfg(), func(p *mpi.Process, world *mpi.Comm) error {
		// op(a, b) = a*10 + b over int64: associative? No — use a genuinely
		// associative non-commutative op: 2x2 matrix multiply flattened
		// into 4 int64s.
		matmul := mpi.OpCreate("mat2x2", func(inout, in []byte, count int, dt mpi.Datatype) error {
			a := mpi.UnpackInt64s(inout)
			b := mpi.UnpackInt64s(in)
			for m := 0; m+4 <= len(a); m += 4 {
				r0 := a[m+0]*b[m+0] + a[m+1]*b[m+2]
				r1 := a[m+0]*b[m+1] + a[m+1]*b[m+3]
				r2 := a[m+2]*b[m+0] + a[m+3]*b[m+2]
				r3 := a[m+2]*b[m+1] + a[m+3]*b[m+3]
				a[m+0], a[m+1], a[m+2], a[m+3] = r0, r1, r2, r3
			}
			copy(inout, mpi.PackInt64s(a))
			return nil
		})
		// Rank r contributes [[1, r+1], [0, 1]]; the ordered product's
		// upper-right entry is the sum 1+2+...+n.
		mine := mpi.PackInt64s([]int64{1, int64(world.Rank() + 1), 0, 1})
		out := make([]byte, 32)
		if err := world.AllreduceUser(mine, out, 4, mpi.Int64, matmul); err != nil {
			return err
		}
		got := mpi.UnpackInt64s(out)
		n := int64(world.Size())
		want := n * (n + 1) / 2
		if got[0] != 1 || got[1] != want || got[2] != 0 || got[3] != 1 {
			return fmt.Errorf("product = %v, want [1 %d 0 1]", got, want)
		}
		// ReduceUser to a root.
		if err := world.ReduceUser(mine, out, 4, mpi.Int64, matmul, 0); err != nil {
			return err
		}
		if world.Rank() == 0 {
			got = mpi.UnpackInt64s(out)
			if got[1] != want {
				return fmt.Errorf("reduce product = %v", got)
			}
		}
		if err := world.ReduceUser(mine, out, 4, mpi.Int64, nil, 0); err == nil {
			return fmt.Errorf("nil op accepted")
		}
		return nil
	})
}
