package mpi

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Datatype describes the element type of a message buffer, in the spirit of
// MPI predefined datatypes. Buffers are always []byte on the wire; the
// datatype gives reductions and typed helpers their interpretation.
type Datatype struct {
	kind dtKind
	size int
	name string
}

type dtKind int

const (
	dtByte dtKind = iota
	dtInt32
	dtInt64
	dtUint32
	dtUint64
	dtFloat32
	dtFloat64
)

// Predefined datatypes.
var (
	Byte    = Datatype{dtByte, 1, "MPI_BYTE"}
	Int32   = Datatype{dtInt32, 4, "MPI_INT32_T"}
	Int64   = Datatype{dtInt64, 8, "MPI_INT64_T"}
	Uint32  = Datatype{dtUint32, 4, "MPI_UINT32_T"}
	Uint64  = Datatype{dtUint64, 8, "MPI_UINT64_T"}
	Float32 = Datatype{dtFloat32, 4, "MPI_FLOAT"}
	Float64 = Datatype{dtFloat64, 8, "MPI_DOUBLE"}
)

// Size returns the datatype's extent in bytes.
func (d Datatype) Size() int { return d.size }

// String returns the MPI-style name.
func (d Datatype) String() string { return d.name }

// Op is a reduction operation.
type Op int

// Predefined reduction operations.
const (
	OpSum Op = iota
	OpProd
	OpMax
	OpMin
	OpLAnd
	OpLOr
	OpBAnd
	OpBOr
)

func (o Op) String() string {
	switch o {
	case OpSum:
		return "MPI_SUM"
	case OpProd:
		return "MPI_PROD"
	case OpMax:
		return "MPI_MAX"
	case OpMin:
		return "MPI_MIN"
	case OpLAnd:
		return "MPI_LAND"
	case OpLOr:
		return "MPI_LOR"
	case OpBAnd:
		return "MPI_BAND"
	case OpBOr:
		return "MPI_BOR"
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// reduce applies inout[i] = op(inout[i], in[i]) element-wise for count
// elements of datatype dt.
func reduce(op Op, dt Datatype, inout, in []byte, count int) error {
	if len(inout) < count*dt.size || len(in) < count*dt.size {
		return fmt.Errorf("mpi: reduce buffer too small for %d x %s", count, dt)
	}
	switch dt.kind {
	case dtByte:
		for i := 0; i < count; i++ {
			inout[i] = byte(reduceU64(op, uint64(inout[i]), uint64(in[i])))
		}
	case dtInt32:
		for i := 0; i < count; i++ {
			a := int32(binary.LittleEndian.Uint32(inout[i*4:]))
			b := int32(binary.LittleEndian.Uint32(in[i*4:]))
			binary.LittleEndian.PutUint32(inout[i*4:], uint32(reduceI64(op, int64(a), int64(b))))
		}
	case dtInt64:
		for i := 0; i < count; i++ {
			a := int64(binary.LittleEndian.Uint64(inout[i*8:]))
			b := int64(binary.LittleEndian.Uint64(in[i*8:]))
			binary.LittleEndian.PutUint64(inout[i*8:], uint64(reduceI64(op, a, b)))
		}
	case dtUint32:
		for i := 0; i < count; i++ {
			a := binary.LittleEndian.Uint32(inout[i*4:])
			b := binary.LittleEndian.Uint32(in[i*4:])
			binary.LittleEndian.PutUint32(inout[i*4:], uint32(reduceU64(op, uint64(a), uint64(b))))
		}
	case dtUint64:
		for i := 0; i < count; i++ {
			a := binary.LittleEndian.Uint64(inout[i*8:])
			b := binary.LittleEndian.Uint64(in[i*8:])
			binary.LittleEndian.PutUint64(inout[i*8:], reduceU64(op, a, b))
		}
	case dtFloat32:
		for i := 0; i < count; i++ {
			a := math.Float32frombits(binary.LittleEndian.Uint32(inout[i*4:]))
			b := math.Float32frombits(binary.LittleEndian.Uint32(in[i*4:]))
			v, err := reduceF64(op, float64(a), float64(b))
			if err != nil {
				return err
			}
			binary.LittleEndian.PutUint32(inout[i*4:], math.Float32bits(float32(v)))
		}
	case dtFloat64:
		for i := 0; i < count; i++ {
			a := math.Float64frombits(binary.LittleEndian.Uint64(inout[i*8:]))
			b := math.Float64frombits(binary.LittleEndian.Uint64(in[i*8:]))
			v, err := reduceF64(op, a, b)
			if err != nil {
				return err
			}
			binary.LittleEndian.PutUint64(inout[i*8:], math.Float64bits(v))
		}
	default:
		return fmt.Errorf("mpi: reduce: unsupported datatype %s", dt)
	}
	return nil
}

func reduceI64(op Op, a, b int64) int64 {
	switch op {
	case OpSum:
		return a + b
	case OpProd:
		return a * b
	case OpMax:
		if a > b {
			return a
		}
		return b
	case OpMin:
		if a < b {
			return a
		}
		return b
	case OpLAnd:
		if a != 0 && b != 0 {
			return 1
		}
		return 0
	case OpLOr:
		if a != 0 || b != 0 {
			return 1
		}
		return 0
	case OpBAnd:
		return a & b
	case OpBOr:
		return a | b
	}
	return a
}

func reduceU64(op Op, a, b uint64) uint64 {
	switch op {
	case OpSum:
		return a + b
	case OpProd:
		return a * b
	case OpMax:
		if a > b {
			return a
		}
		return b
	case OpMin:
		if a < b {
			return a
		}
		return b
	case OpLAnd:
		if a != 0 && b != 0 {
			return 1
		}
		return 0
	case OpLOr:
		if a != 0 || b != 0 {
			return 1
		}
		return 0
	case OpBAnd:
		return a & b
	case OpBOr:
		return a | b
	}
	return a
}

func reduceF64(op Op, a, b float64) (float64, error) {
	switch op {
	case OpSum:
		return a + b, nil
	case OpProd:
		return a * b, nil
	case OpMax:
		return math.Max(a, b), nil
	case OpMin:
		return math.Min(a, b), nil
	case OpBAnd, OpBOr:
		return 0, fmt.Errorf("mpi: bitwise %s undefined on floating-point data", op)
	case OpLAnd:
		if a != 0 && b != 0 {
			return 1, nil
		}
		return 0, nil
	case OpLOr:
		if a != 0 || b != 0 {
			return 1, nil
		}
		return 0, nil
	}
	return a, nil
}

// Typed buffer helpers: MPI applications in this library express payloads
// as []byte; these pack and unpack common Go slices.

// PackFloat64s encodes a float64 slice little-endian.
func PackFloat64s(v []float64) []byte {
	out := make([]byte, 8*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(out[i*8:], math.Float64bits(x))
	}
	return out
}

// UnpackFloat64s decodes a little-endian float64 buffer.
func UnpackFloat64s(b []byte) []float64 {
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out
}

// PackInt64s encodes an int64 slice little-endian.
func PackInt64s(v []int64) []byte {
	out := make([]byte, 8*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(out[i*8:], uint64(x))
	}
	return out
}

// UnpackInt64s decodes a little-endian int64 buffer.
func UnpackInt64s(b []byte) []int64 {
	out := make([]int64, len(b)/8)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out
}

// PackInt32s encodes an int32 slice little-endian.
func PackInt32s(v []int32) []byte {
	out := make([]byte, 4*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint32(out[i*4:], uint32(x))
	}
	return out
}

// UnpackInt32s decodes a little-endian int32 buffer.
func UnpackInt32s(b []byte) []int32 {
	out := make([]int32, len(b)/4)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return out
}

// PackFloat32s encodes a float32 slice little-endian.
func PackFloat32s(v []float32) []byte {
	out := make([]byte, 4*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint32(out[i*4:], math.Float32bits(x))
	}
	return out
}

// UnpackFloat32s decodes a little-endian float32 buffer.
func UnpackFloat32s(b []byte) []float32 {
	out := make([]float32, len(b)/4)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return out
}

// PackUint32s encodes a uint32 slice little-endian.
func PackUint32s(v []uint32) []byte {
	out := make([]byte, 4*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint32(out[i*4:], x)
	}
	return out
}

// UnpackUint32s decodes a little-endian uint32 buffer.
func UnpackUint32s(b []byte) []uint32 {
	out := make([]uint32, len(b)/4)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(b[i*4:])
	}
	return out
}
