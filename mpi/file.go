package mpi

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
)

// MPI file support. Files created from a group (MPI_File_open_from_group in
// the Sessions proposal) follow the prototype's pattern (§III-B6): build an
// intermediate communicator from the group, open with that parent, free the
// intermediate. The "file system" is simulated: the communicator's rank 0
// hosts the bytes and services read/write RPCs, standing in for a shared
// parallel file system visible to all members.

const (
	fileTagReq = -1000011
	fileTagAck = -1000013
)

const (
	fileOpRead = iota + 1
	fileOpWrite
	fileOpSize
	fileOpStop
)

// ErrFileClosed is returned when using a closed file.
var ErrFileClosed = errors.New("mpi: file has been closed")

// File is a simulated shared file opened collectively (MPI_File).
type File struct {
	comm *Comm
	name string

	mu      sync.Mutex
	closed  bool
	svcDone chan struct{}
	data    []byte // host side only (rank 0)
}

// FileOpenFromGroup opens a shared file collectively over a group, per the
// Sessions proposal. Collective over the group's members.
func (s *Session) FileOpenFromGroup(group *Group, tag, name string) (*File, error) {
	if err := s.checkLive(); err != nil {
		return nil, s.errh.invoke(err)
	}
	inter, err := s.CommCreateFromGroup(group, "file/"+tag, nil, nil)
	if err != nil {
		return nil, err
	}
	f, err := FileOpen(inter, name)
	if err != nil {
		_ = inter.Free()
		return nil, s.errh.invoke(err)
	}
	if err := inter.Free(); err != nil {
		return nil, s.errh.invoke(err)
	}
	return f, nil
}

// FileOpen opens a shared file over an existing communicator
// (MPI_File_open). Collective. File contents persist in the runtime's
// global name service across close/re-open — the simulated analogue of a
// parallel file system — so checkpoint/restart patterns work across
// independent opens.
func FileOpen(comm *Comm, name string) (*File, error) {
	priv, err := comm.Dup()
	if err != nil {
		return nil, err
	}
	f := &File{comm: priv, name: name, svcDone: make(chan struct{})}
	if priv.Rank() == 0 {
		// Restore any persisted contents before serving.
		if data, err := comm.p.inst.Client().Lookup(fileStoreKey(name), 0); err == nil {
			f.data = append([]byte(nil), data...)
		}
		go f.service()
	} else {
		close(f.svcDone)
	}
	if err := priv.Barrier(); err != nil {
		return nil, err
	}
	return f, nil
}

func fileStoreKey(name string) string { return "mpi.file/" + name }

// FileDelete removes a persisted file from the simulated file system
// (MPI_File_delete). Local operation.
func FileDelete(p *Process, name string) error {
	client := p.inst.Client()
	if client == nil {
		return ErrNotInitialized
	}
	return client.Unpublish(fileStoreKey(name))
}

// Name returns the file name.
func (f *File) Name() string { return f.name }

func (f *File) service() {
	defer close(f.svcDone)
	buf := make([]byte, 1<<20)
	for {
		st, err := f.comm.ch.Recv(AnySource, fileTagReq, buf)
		if err != nil {
			return
		}
		req := buf[:st.Count]
		switch req[0] {
		case fileOpStop:
			return
		case fileOpWrite:
			off := int(binary.LittleEndian.Uint64(req[1:]))
			payload := req[17:]
			f.mu.Lock()
			if need := off + len(payload); need > len(f.data) {
				grown := make([]byte, need)
				copy(grown, f.data)
				f.data = grown
			}
			copy(f.data[off:], payload)
			f.mu.Unlock()
			_ = f.comm.ch.Send(st.Source, fileTagAck, []byte{1})
		case fileOpRead:
			off := int(binary.LittleEndian.Uint64(req[1:]))
			length := int(binary.LittleEndian.Uint64(req[9:]))
			f.mu.Lock()
			out := make([]byte, 0, length)
			if off < len(f.data) {
				end := off + length
				if end > len(f.data) {
					end = len(f.data)
				}
				out = append(out, f.data[off:end]...)
			}
			f.mu.Unlock()
			_ = f.comm.ch.Send(st.Source, fileTagAck, out)
		case fileOpSize:
			f.mu.Lock()
			n := uint64(len(f.data))
			f.mu.Unlock()
			var resp [8]byte
			binary.LittleEndian.PutUint64(resp[:], n)
			_ = f.comm.ch.Send(st.Source, fileTagAck, resp[:])
		}
	}
}

func (f *File) checkOpen() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return ErrFileClosed
	}
	return nil
}

// WriteAt writes data at the given offset (MPI_File_write_at).
func (f *File) WriteAt(offset int, data []byte) error {
	if err := f.checkOpen(); err != nil {
		return err
	}
	if offset < 0 {
		return fmt.Errorf("mpi: negative file offset")
	}
	if f.comm.Rank() == 0 {
		f.mu.Lock()
		defer f.mu.Unlock()
		if need := offset + len(data); need > len(f.data) {
			grown := make([]byte, need)
			copy(grown, f.data)
			f.data = grown
		}
		copy(f.data[offset:], data)
		return nil
	}
	req := make([]byte, 17+len(data))
	req[0] = fileOpWrite
	binary.LittleEndian.PutUint64(req[1:], uint64(offset))
	binary.LittleEndian.PutUint64(req[9:], uint64(len(data)))
	copy(req[17:], data)
	if err := f.comm.ch.Send(0, fileTagReq, req); err != nil {
		return err
	}
	var ack [1]byte
	_, err := f.comm.ch.Recv(0, fileTagAck, ack[:])
	return err
}

// ReadAt reads up to len(buf) bytes at offset, returning the count read
// (MPI_File_read_at).
func (f *File) ReadAt(offset int, buf []byte) (int, error) {
	if err := f.checkOpen(); err != nil {
		return 0, err
	}
	if offset < 0 {
		return 0, fmt.Errorf("mpi: negative file offset")
	}
	if f.comm.Rank() == 0 {
		f.mu.Lock()
		defer f.mu.Unlock()
		if offset >= len(f.data) {
			return 0, nil
		}
		return copy(buf, f.data[offset:]), nil
	}
	req := make([]byte, 17)
	req[0] = fileOpRead
	binary.LittleEndian.PutUint64(req[1:], uint64(offset))
	binary.LittleEndian.PutUint64(req[9:], uint64(len(buf)))
	if err := f.comm.ch.Send(0, fileTagReq, req); err != nil {
		return 0, err
	}
	st, err := f.comm.ch.Recv(0, fileTagAck, buf)
	if err != nil {
		return 0, err
	}
	return st.Count, nil
}

// Size returns the current file size (MPI_File_get_size).
func (f *File) Size() (int, error) {
	if err := f.checkOpen(); err != nil {
		return 0, err
	}
	if f.comm.Rank() == 0 {
		f.mu.Lock()
		defer f.mu.Unlock()
		return len(f.data), nil
	}
	req := []byte{fileOpSize, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}
	if err := f.comm.ch.Send(0, fileTagReq, req); err != nil {
		return 0, err
	}
	var resp [8]byte
	if _, err := f.comm.ch.Recv(0, fileTagAck, resp[:]); err != nil {
		return 0, err
	}
	return int(binary.LittleEndian.Uint64(resp[:])), nil
}

// Sync is a barrier ensuring all members' preceding writes are applied
// (MPI_File_sync): writes are synchronous RPCs, so a barrier suffices.
func (f *File) Sync() error {
	if err := f.checkOpen(); err != nil {
		return err
	}
	return f.comm.Barrier()
}

// Close closes the file collectively (MPI_File_close), persisting its
// contents to the simulated file system.
func (f *File) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return ErrFileClosed
	}
	f.closed = true
	f.mu.Unlock()
	if err := f.comm.Barrier(); err != nil {
		return err
	}
	if f.comm.Rank() == 0 {
		_ = f.comm.ch.Send(0, fileTagReq, []byte{fileOpStop})
		<-f.svcDone
		f.mu.Lock()
		data := f.data
		f.mu.Unlock()
		if err := f.comm.p.inst.Client().Publish(fileStoreKey(f.name), data); err != nil {
			return err
		}
	} else {
		<-f.svcDone
	}
	return f.comm.Free()
}
