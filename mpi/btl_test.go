package mpi_test

import (
	"fmt"
	"testing"

	"gompi/internal/core"
	"gompi/mpi"
)

// sendRecvOnce rank 0 -> rank 1 over a world-equivalent communicator.
func sendRecvOnce(p *mpi.Process) error {
	sess, err := p.SessionInit(nil, nil)
	if err != nil {
		return err
	}
	defer sess.Finalize()
	grp, err := sess.GroupFromPset(mpi.PsetWorld)
	if err != nil {
		return err
	}
	comm, err := sess.CommCreateFromGroup(grp, "btl-test", nil, nil)
	if err != nil {
		return err
	}
	defer comm.Free()
	buf := make([]byte, 4)
	if comm.Rank() == 0 {
		if err := comm.Send([]byte("ping"), 1, 1); err != nil {
			return err
		}
		if _, err := comm.Recv(buf, 1, 2); err != nil {
			return err
		}
	} else {
		if _, err := comm.Recv(buf, 0, 1); err != nil {
			return err
		}
		if err := comm.Send(buf, 0, 2); err != nil {
			return err
		}
	}
	return nil
}

// TestBTLStatsIntraNodeUsesSM: with both ranks on one node, all traffic must
// ride the shared-memory fast path and none the fabric.
func TestBTLStatsIntraNodeUsesSM(t *testing.T) {
	run(t, 1, 2, exCfg(), func(p *mpi.Process) error {
		if p.BTLStatsSnapshot() != nil {
			return fmt.Errorf("stats non-nil before init")
		}
		if err := sendRecvOnce(p); err != nil {
			return err
		}
		return nil
	})
}

// TestBTLStatsSnapshotLive inspects counters while the session is open.
func TestBTLStatsSnapshotLive(t *testing.T) {
	run(t, 1, 2, exCfg(), func(p *mpi.Process) error {
		sess, err := p.SessionInit(nil, nil)
		if err != nil {
			return err
		}
		defer sess.Finalize()
		grp, err := sess.GroupFromPset(mpi.PsetWorld)
		if err != nil {
			return err
		}
		comm, err := sess.CommCreateFromGroup(grp, "btl-live", nil, nil)
		if err != nil {
			return err
		}
		defer comm.Free()
		buf := make([]byte, 1)
		if comm.Rank() == 0 {
			if err := comm.Send([]byte{1}, 1, 1); err != nil {
				return err
			}
			if _, err := comm.Recv(buf, 1, 2); err != nil {
				return err
			}
			st := p.BTLStatsSnapshot()
			if st["sm"].Msgs == 0 {
				return fmt.Errorf("intra-node traffic bypassed sm: %+v", st)
			}
			if st["net"].Msgs != 0 {
				return fmt.Errorf("intra-node traffic touched the fabric: %+v", st)
			}
		} else {
			if _, err := comm.Recv(buf, 0, 1); err != nil {
				return err
			}
			if err := comm.Send(buf, 0, 2); err != nil {
				return err
			}
		}
		return nil
	})
}

// TestBTLStatsInterNodeUsesNet: one rank per node, so sm never accepts the
// peer and the fabric carries everything.
func TestBTLStatsInterNodeUsesNet(t *testing.T) {
	run(t, 2, 1, exCfg(), func(p *mpi.Process) error {
		sess, err := p.SessionInit(nil, nil)
		if err != nil {
			return err
		}
		defer sess.Finalize()
		grp, err := sess.GroupFromPset(mpi.PsetWorld)
		if err != nil {
			return err
		}
		comm, err := sess.CommCreateFromGroup(grp, "btl-inter", nil, nil)
		if err != nil {
			return err
		}
		defer comm.Free()
		buf := make([]byte, 1)
		if comm.Rank() == 0 {
			if err := comm.Send([]byte{1}, 1, 1); err != nil {
				return err
			}
			st := p.BTLStatsSnapshot()
			if st["net"].Msgs == 0 {
				return fmt.Errorf("inter-node traffic did not use net: %+v", st)
			}
			if st["sm"].Msgs != 0 {
				return fmt.Errorf("inter-node traffic claimed sm: %+v", st)
			}
		} else if _, err := comm.Recv(buf, 0, 1); err != nil {
			return err
		}
		return nil
	})
}

// TestBTLExcludeSM proves the MCA switch reaches the app level: with sm
// excluded the same intra-node exchange rides the fabric.
func TestBTLExcludeSM(t *testing.T) {
	cfg := exCfg()
	cfg.BTL = "^sm"
	run(t, 1, 2, cfg, func(p *mpi.Process) error {
		sess, err := p.SessionInit(nil, nil)
		if err != nil {
			return err
		}
		defer sess.Finalize()
		grp, err := sess.GroupFromPset(mpi.PsetWorld)
		if err != nil {
			return err
		}
		comm, err := sess.CommCreateFromGroup(grp, "btl-nosm", nil, nil)
		if err != nil {
			return err
		}
		defer comm.Free()
		buf := make([]byte, 1)
		if comm.Rank() == 0 {
			if err := comm.Send([]byte{1}, 1, 1); err != nil {
				return err
			}
			st := p.BTLStatsSnapshot()
			if _, loaded := st["sm"]; loaded {
				return fmt.Errorf("sm loaded despite exclusion: %+v", st)
			}
			if st["net"].Msgs == 0 {
				return fmt.Errorf("traffic vanished with sm excluded: %+v", st)
			}
		} else if _, err := comm.Recv(buf, 0, 1); err != nil {
			return err
		}
		return nil
	})
}

// TestBTLStatsUDPTransport forces the udp BTL so even intra-node traffic
// crosses a real loopback socket, then checks both directions of the
// counters at the app level: send-side Msgs/Bytes, receive-side
// RecvMsgs/RecvBytes, and a clean (drop-free) wire. No other transport may
// be instantiated.
func TestBTLStatsUDPTransport(t *testing.T) {
	cfg := exCfg()
	cfg.BTL = "udp"
	run(t, 1, 2, cfg, func(p *mpi.Process) error {
		sess, err := p.SessionInit(nil, nil)
		if err != nil {
			return err
		}
		defer sess.Finalize()
		grp, err := sess.GroupFromPset(mpi.PsetWorld)
		if err != nil {
			return err
		}
		comm, err := sess.CommCreateFromGroup(grp, "btl-udp", nil, nil)
		if err != nil {
			return err
		}
		defer comm.Free()
		buf := make([]byte, 4)
		if comm.Rank() == 0 {
			if err := comm.Send([]byte("ping"), 1, 1); err != nil {
				return err
			}
			if _, err := comm.Recv(buf, 1, 2); err != nil {
				return err
			}
			// Rank 0 has now both sent and received over the socket.
			st := p.BTLStatsSnapshot()
			if len(st) != 1 {
				return fmt.Errorf("forced udp loaded extra transports: %+v", st)
			}
			u := st["udp"]
			if u.Msgs == 0 || u.Bytes == 0 {
				return fmt.Errorf("udp send counters empty: %+v", u)
			}
			if u.RecvMsgs == 0 || u.RecvBytes == 0 {
				return fmt.Errorf("udp receive counters empty: %+v", u)
			}
			if u.Drops != 0 {
				return fmt.Errorf("clean loopback exchange recorded drops: %+v", u)
			}
		} else {
			if _, err := comm.Recv(buf, 0, 1); err != nil {
				return err
			}
			if err := comm.Send(buf, 0, 2); err != nil {
				return err
			}
		}
		return nil
	})
}

// TestBTLWorksAcrossCIDModes runs the sm path under the consensus CID
// algorithm too (via the WPM, since consensus mode has no Sessions
// constructors) — transport selection is orthogonal to CID generation.
func TestBTLWorksAcrossCIDModes(t *testing.T) {
	for _, cfg := range []core.Config{conCfg(), exCfg()} {
		cfg := cfg
		t.Run(cfg.CIDMode.String(), func(t *testing.T) {
			run(t, 1, 2, cfg, func(p *mpi.Process) error {
				if err := p.Init(); err != nil {
					return err
				}
				defer p.Finalize()
				comm := p.CommWorld()
				buf := make([]byte, 4)
				if comm.Rank() == 0 {
					if err := comm.Send([]byte("ping"), 1, 1); err != nil {
						return err
					}
					st := p.BTLStatsSnapshot()
					if st["sm"].Msgs == 0 {
						return fmt.Errorf("intra-node WPM traffic bypassed sm: %+v", st)
					}
				} else if _, err := comm.Recv(buf, 0, 1); err != nil {
					return err
				}
				return nil
			})
		})
	}
}
