package mpi_test

import (
	"fmt"
	"sync"
	"testing"

	"gompi/mpi"
)

// TestAllreduceBothAlgorithms exercises the recursive-doubling path
// (power-of-two sizes) and the reduce+bcast fallback (other sizes) against
// the same oracle.
func TestAllreduceBothAlgorithms(t *testing.T) {
	for _, ppn := range []int{4, 6} { // 4 = recursive doubling, 6 = fallback
		ppn := ppn
		t.Run(fmt.Sprintf("size-%d", ppn), func(t *testing.T) {
			withWorld(t, 1, ppn, exCfg(), func(p *mpi.Process, world *mpi.Comm) error {
				n := int64(world.Size())
				r := int64(world.Rank())
				for _, tc := range []struct {
					op   mpi.Op
					in   int64
					want int64
				}{
					{mpi.OpSum, r + 1, n * (n + 1) / 2},
					{mpi.OpMax, r * 3, (n - 1) * 3},
					{mpi.OpMin, r + 10, 10},
					{mpi.OpBOr, 1 << uint(r), (1 << uint(n)) - 1},
				} {
					got, err := world.AllreduceInt64(tc.in, tc.op)
					if err != nil {
						return err
					}
					if got != tc.want {
						return fmt.Errorf("size %d %v: got %d want %d", n, tc.op, got, tc.want)
					}
				}
				return nil
			})
		})
	}
}

// TestAllreduceFloatDeterministic: every member must end with the
// bit-identical float result, regardless of algorithm.
func TestAllreduceFloatDeterministic(t *testing.T) {
	for _, ppn := range []int{4, 6} {
		ppn := ppn
		t.Run(fmt.Sprintf("size-%d", ppn), func(t *testing.T) {
			var mu sync.Mutex
			var results []float64
			withWorld(t, 1, ppn, exCfg(), func(p *mpi.Process, world *mpi.Comm) error {
				// Values chosen so different summation orders WOULD differ
				// in floating point if members bracketed differently.
				v := 0.1*float64(world.Rank()+1) + 1e-9/float64(world.Rank()+1)
				got, err := world.AllreduceFloat64(v, mpi.OpSum)
				if err != nil {
					return err
				}
				mu.Lock()
				results = append(results, got)
				mu.Unlock()
				return nil
			})
			for _, v := range results[1:] {
				if v != results[0] {
					t.Fatalf("members disagree: %v", results)
				}
			}
		})
	}
}

// TestAllreduceVector exercises multi-element payloads on both paths.
func TestAllreduceVector(t *testing.T) {
	for _, ppn := range []int{4, 3} {
		ppn := ppn
		t.Run(fmt.Sprintf("size-%d", ppn), func(t *testing.T) {
			withWorld(t, 1, ppn, exCfg(), func(p *mpi.Process, world *mpi.Comm) error {
				const count = 17
				in := make([]int64, count)
				for i := range in {
					in[i] = int64(world.Rank()*100 + i)
				}
				out := make([]byte, count*8)
				if err := world.Allreduce(mpi.PackInt64s(in), out, count, mpi.Int64, mpi.OpSum); err != nil {
					return err
				}
				got := mpi.UnpackInt64s(out)
				n := int64(world.Size())
				sumRanks := n * (n - 1) / 2
				for i := range got {
					want := 100*sumRanks + n*int64(i)
					if got[i] != want {
						return fmt.Errorf("element %d: %d != %d", i, got[i], want)
					}
				}
				return nil
			})
		})
	}
}

func TestAllreduceShortSendBuffer(t *testing.T) {
	withWorld(t, 1, 2, exCfg(), func(p *mpi.Process, world *mpi.Comm) error {
		out := make([]byte, 16)
		if err := world.Allreduce(make([]byte, 4), out, 2, mpi.Int64, mpi.OpSum); err == nil {
			return fmt.Errorf("short send buffer accepted")
		}
		return nil
	})
}
