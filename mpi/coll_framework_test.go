package mpi_test

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"gompi/internal/coll"
	"gompi/internal/core"
	"gompi/mpi"
)

// Tests for the collective framework integration: trace events, stats
// counters, Info-hint overrides, and the hierarchical selection on
// multi-node jobs.

func TestCollTraceAndStats(t *testing.T) {
	cfg := exCfg()
	cfg.Trace = true
	run(t, 1, 4, cfg, func(p *mpi.Process) error {
		if err := p.Init(); err != nil {
			return err
		}
		defer p.Finalize()
		world := p.CommWorld()
		if err := world.Barrier(); err != nil {
			return err
		}
		buf := make([]byte, 64)
		if err := world.Bcast(buf, 0); err != nil {
			return err
		}
		out := make([]byte, 8)
		if err := world.Allreduce(mpi.PackInt64s([]int64{1}), out, 1, mpi.Int64, mpi.OpSum); err != nil {
			return err
		}
		st := p.CollStatsSnapshot()
		// Single node: the hier component passes, tuned decides.
		for _, key := range []string{"barrier/binomial", "bcast/binomial", "allreduce/recursive_doubling"} {
			if st[key] == 0 {
				return fmt.Errorf("stats[%s] = 0 (full: %v)", key, st)
			}
		}
		var collEvents int
		for _, ev := range p.Instance().Trace().Events() {
			if ev.Layer == "coll" {
				collEvents++
				if !strings.Contains(ev.Msg, "->") {
					return fmt.Errorf("malformed coll event %q", ev.Msg)
				}
			}
		}
		if collEvents < 3 {
			return fmt.Errorf("want >=3 coll trace events, got %d", collEvents)
		}
		return nil
	})
}

// TestBTLFallbackTraced: with sm excluded, route selection logs the sm
// module declining intra-node peers before net picks them up.
func TestBTLFallbackTraced(t *testing.T) {
	cfg := exCfg()
	cfg.Trace = true
	cfg.BTL = "" // both modules; sm declines nothing intra-node...
	run(t, 2, 1, cfg, func(p *mpi.Process) error {
		// Two single-rank nodes: sm cannot reach the remote peer, so the
		// route must fall back to net and the fallback must be traced.
		if err := p.Init(); err != nil {
			return err
		}
		defer p.Finalize()
		world := p.CommWorld()
		if err := world.Barrier(); err != nil {
			return err
		}
		var sawFallback, sawRoute bool
		for _, ev := range p.Instance().Trace().Events() {
			if ev.Layer != "btl" {
				continue
			}
			if strings.Contains(ev.Msg, "falling back") {
				sawFallback = true
			}
			if strings.Contains(ev.Msg, "routed via net") {
				sawRoute = true
			}
		}
		if !sawFallback || !sawRoute {
			return fmt.Errorf("btl trace missing events (fallback=%v route=%v)", sawFallback, sawRoute)
		}
		return nil
	})
}

// TestCollHierSelectedMultiNode: on a 2-node job with several ranks per
// node, the default chain routes barrier/bcast/allreduce hierarchically.
func TestCollHierSelectedMultiNode(t *testing.T) {
	run(t, 2, 4, exCfg(), func(p *mpi.Process) error {
		if err := p.Init(); err != nil {
			return err
		}
		defer p.Finalize()
		world := p.CommWorld()
		if err := world.Barrier(); err != nil {
			return err
		}
		payload := []byte("hierarchical broadcast payload")
		buf := make([]byte, len(payload))
		if world.Rank() == 0 {
			copy(buf, payload)
		}
		if err := world.Bcast(buf, 0); err != nil {
			return err
		}
		if !bytes.Equal(buf, payload) {
			return fmt.Errorf("bcast payload corrupted: %q", buf)
		}
		got, err := world.AllreduceInt64(int64(world.Rank()), mpi.OpSum)
		if err != nil {
			return err
		}
		want := int64(world.Size() * (world.Size() - 1) / 2)
		if got != want {
			return fmt.Errorf("allreduce = %d, want %d", got, want)
		}
		st := p.CollStatsSnapshot()
		for _, key := range []string{"barrier/hier", "bcast/hier", "allreduce/hier"} {
			if st[key] == 0 {
				return fmt.Errorf("stats[%s] = 0 (full: %v)", key, st)
			}
		}
		return nil
	})
}

// TestCollExcludeHierFlat: Config.Coll governs the chain end to end.
func TestCollExcludeHierFlat(t *testing.T) {
	cfg := exCfg()
	cfg.Coll = "^hier"
	run(t, 2, 4, cfg, func(p *mpi.Process) error {
		if err := p.Init(); err != nil {
			return err
		}
		defer p.Finalize()
		world := p.CommWorld()
		if _, err := world.AllreduceInt64(1, mpi.OpSum); err != nil {
			return err
		}
		st := p.CollStatsSnapshot()
		if st["allreduce/hier"] != 0 {
			return fmt.Errorf("hier ran despite exclusion: %v", st)
		}
		if st["allreduce/recursive_doubling"] == 0 {
			return fmt.Errorf("tuned flat algorithm missing: %v", st)
		}
		return nil
	})
}

// TestCollInfoHintOverride: a gompi_coll_* hint set via SetInfo wins over
// the component chain, and GetInfo reflects it.
func TestCollInfoHintOverride(t *testing.T) {
	run(t, 1, 4, exCfg(), func(p *mpi.Process) error {
		if err := p.Init(); err != nil {
			return err
		}
		defer p.Finalize()
		world := p.CommWorld()
		info := mpi.NewInfo()
		info.Set("gompi_coll_allreduce", "ring")
		if err := world.SetInfo(info); err != nil {
			return err
		}
		if v, ok := world.GetInfo().Get("gompi_coll_allreduce"); !ok || v != "ring" {
			return fmt.Errorf("GetInfo = %q, %v", v, ok)
		}
		if _, err := world.AllreduceInt64(2, mpi.OpSum); err != nil {
			return err
		}
		st := p.CollStatsSnapshot()
		if st["allreduce/ring"] == 0 {
			return fmt.Errorf("ring hint not honored: %v", st)
		}
		bad := mpi.NewInfo()
		bad.Set("gompi_coll_bcast", "no_such_algo")
		if err := world.SetInfo(bad); err == nil {
			return fmt.Errorf("unknown algorithm hint must error")
		}
		return nil
	})
}

// TestCollInfoHintAtCreation: hints passed to CommCreateFromGroup apply
// from the communicator's first collective, and invalid hints fail the
// creation.
func TestCollInfoHintAtCreation(t *testing.T) {
	run(t, 1, 4, exCfg(), func(p *mpi.Process) error {
		sess, err := p.SessionInit(nil, nil)
		if err != nil {
			return err
		}
		defer sess.Finalize()
		group, err := sess.GroupFromPset(mpi.PsetWorld)
		if err != nil {
			return err
		}
		info := mpi.NewInfo()
		info.Set("gompi_coll_allreduce", "reduce_bcast")
		comm, err := sess.CommCreateFromGroup(group, "coll-hint", info, nil)
		if err != nil {
			return err
		}
		defer comm.Free()
		if _, err := comm.AllreduceInt64(1, mpi.OpSum); err != nil {
			return err
		}
		if st := p.CollStatsSnapshot(); st["allreduce/reduce_bcast"] == 0 {
			return fmt.Errorf("creation hint not honored: %v", st)
		}
		bad := mpi.NewInfo()
		bad.Set("gompi_coll_barrier", "bogus")
		if _, err := sess.CommCreateFromGroup(group, "coll-bad-hint", bad, nil); err == nil {
			return fmt.Errorf("invalid hint must fail communicator creation")
		}
		return nil
	})
}

// TestNonblockingSharesDispatch: the I-variants must select through the
// same module as the blocking forms — the counters land on the same keys.
func TestNonblockingSharesDispatch(t *testing.T) {
	run(t, 1, 4, exCfg(), func(p *mpi.Process) error {
		if err := p.Init(); err != nil {
			return err
		}
		defer p.Finalize()
		world := p.CommWorld()
		info := mpi.NewInfo()
		info.Set("gompi_coll_allreduce", "reduce_bcast")
		if err := world.SetInfo(info); err != nil {
			return err
		}
		in := mpi.PackInt64s([]int64{int64(world.Rank())})
		out := make([]byte, 8)
		if err := world.Allreduce(in, out, 1, mpi.Int64, mpi.OpSum); err != nil {
			return err
		}
		req, err := world.Iallreduce(in, out, 1, mpi.Int64, mpi.OpSum)
		if err != nil {
			return err
		}
		if _, err := req.Wait(); err != nil {
			return err
		}
		breq, err := world.Ibarrier()
		if err != nil {
			return err
		}
		if _, err := breq.Wait(); err != nil {
			return err
		}
		buf := make([]byte, 16)
		bcreq, err := world.Ibcast(buf, 0)
		if err != nil {
			return err
		}
		if _, err := bcreq.Wait(); err != nil {
			return err
		}
		st := p.CollStatsSnapshot()
		if st["allreduce/reduce_bcast"] != 2 {
			return fmt.Errorf("blocking+nonblocking should share the key: %v", st)
		}
		if st["barrier/binomial"] == 0 || st["bcast/binomial"] == 0 {
			return fmt.Errorf("nonblocking barrier/bcast not counted: %v", st)
		}
		return nil
	})
}

// TestCollStatsNil: the snapshot is nil before initialization, mirroring
// BTLStatsSnapshot.
func TestCollStatsNil(t *testing.T) {
	run(t, 1, 1, exCfg(), func(p *mpi.Process) error {
		if st := p.CollStatsSnapshot(); st != nil {
			return fmt.Errorf("want nil before init, got %v", st)
		}
		return nil
	})
}

// TestCollSelectionConfigErrors mirrors the BTL selection error tests at
// the mpi layer: a bad Config.Coll surfaces from session initialization.
func TestCollSelectionConfigErrors(t *testing.T) {
	for _, spec := range []string{"^hier,tuned,basic", "bogus"} {
		cfg := exCfg()
		cfg.Coll = spec
		run(t, 1, 1, cfg, func(p *mpi.Process) error {
			if _, err := p.SessionInit(nil, nil); err == nil {
				return fmt.Errorf("Coll=%q must fail initialization", spec)
			}
			return nil
		})
	}
}

// TestCollAlgorithmsExported sanity-checks the registry the property test
// iterates: every op has at least two variants (the tentpole requirement).
func TestCollAlgorithmsExported(t *testing.T) {
	for _, op := range coll.Ops() {
		if n := len(coll.Algorithms(op)); n < 2 {
			t.Errorf("%s has %d algorithm variants, want >= 2", op, n)
		}
	}
	if _, err := coll.NewFramework([]string{"tuned"}, nil); err != nil {
		t.Fatal(err)
	}
	var _ core.Config // keep the import balanced with the helpers above
}
