package mpi_test

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"gompi/internal/core"
	"gompi/internal/topo"
	"gompi/mpi"
	"gompi/runtime"
)

// run launches a loopback job and fails the test on any rank error.
func run(t *testing.T, nodes, ppn int, cfg core.Config, main func(p *mpi.Process) error) {
	t.Helper()
	err := runtime.Run(runtime.Options{
		Cluster: topo.New(topo.Loopback(ppn), nodes),
		PPN:     ppn,
		Config:  cfg,
	}, main)
	if err != nil {
		t.Fatal(err)
	}
}

func exCfg() core.Config  { return core.Config{CIDMode: core.CIDExtended} }
func conCfg() core.Config { return core.Config{CIDMode: core.CIDConsensus} }

func TestWPMInitFinalize(t *testing.T) {
	for _, cfg := range []core.Config{conCfg(), exCfg()} {
		cfg := cfg
		t.Run(cfg.CIDMode.String(), func(t *testing.T) {
			run(t, 2, 2, cfg, func(p *mpi.Process) error {
				if p.Initialized() {
					return fmt.Errorf("initialized before Init")
				}
				if err := p.Init(); err != nil {
					return err
				}
				if !p.Initialized() {
					return fmt.Errorf("not initialized after Init")
				}
				world := p.CommWorld()
				if world.Size() != 4 || world.Rank() != p.JobRank() {
					return fmt.Errorf("world size=%d rank=%d", world.Size(), world.Rank())
				}
				self := p.CommSelf()
				if self.Size() != 1 || self.Rank() != 0 {
					return fmt.Errorf("self size=%d rank=%d", self.Size(), self.Rank())
				}
				if err := p.Init(); !errors.Is(err, mpi.ErrAlreadyInitialized) {
					return fmt.Errorf("double init: %v", err)
				}
				if err := p.Finalize(); err != nil {
					return err
				}
				if !p.Finalized() {
					return fmt.Errorf("not finalized")
				}
				if err := p.Finalize(); !errors.Is(err, mpi.ErrFinalized) {
					return fmt.Errorf("double finalize: %v", err)
				}
				if err := p.Init(); !errors.Is(err, mpi.ErrFinalized) {
					return fmt.Errorf("init after finalize: %v", err)
				}
				return nil
			})
		})
	}
}

func TestWPMPingPong(t *testing.T) {
	for _, cfg := range []core.Config{conCfg(), exCfg()} {
		cfg := cfg
		t.Run(cfg.CIDMode.String(), func(t *testing.T) {
			run(t, 2, 1, cfg, func(p *mpi.Process) error {
				if err := p.Init(); err != nil {
					return err
				}
				defer p.Finalize()
				world := p.CommWorld()
				buf := make([]byte, 8)
				if world.Rank() == 0 {
					copy(buf, "pingpong")
					if err := world.Send(buf, 1, 7); err != nil {
						return err
					}
					if _, err := world.Recv(buf, 1, 8); err != nil {
						return err
					}
					if string(buf) != "PONGPING" {
						return fmt.Errorf("got %q", buf)
					}
				} else {
					st, err := world.Recv(buf, 0, 7)
					if err != nil {
						return err
					}
					if st.Source != 0 || st.Count != 8 {
						return fmt.Errorf("status %+v", st)
					}
					if err := world.Send([]byte("PONGPING"), 0, 8); err != nil {
						return err
					}
				}
				return nil
			})
		})
	}
}

func TestSessionLifecycle(t *testing.T) {
	run(t, 1, 2, exCfg(), func(p *mpi.Process) error {
		sess, err := p.SessionInit(nil, mpi.ErrorsReturn())
		if err != nil {
			return err
		}
		if sess.Finalized() {
			return fmt.Errorf("fresh session reports finalized")
		}
		if err := sess.Finalize(); err != nil {
			return err
		}
		if err := sess.Finalize(); !errors.Is(err, mpi.ErrSessionFinalized) {
			return fmt.Errorf("double finalize: %v", err)
		}
		return nil
	})
}

func TestSessionPsets(t *testing.T) {
	err := runtime.Run(runtime.Options{
		Cluster: topo.New(topo.Loopback(2), 2),
		PPN:     2,
		Psets:   map[string][]int{"app://ocean": {0, 1, 2}},
		Config:  exCfg(),
	}, func(p *mpi.Process) error {
		sess, err := p.SessionInit(nil, nil)
		if err != nil {
			return err
		}
		defer sess.Finalize()
		n, err := sess.NumPsets()
		if err != nil {
			return err
		}
		if n < 4 { // world, self, shared + ocean
			return fmt.Errorf("NumPsets = %d, want >= 4", n)
		}
		names := map[string]bool{}
		for i := 0; i < n; i++ {
			name, err := sess.PsetName(i)
			if err != nil {
				return err
			}
			names[name] = true
		}
		for _, want := range []string{mpi.PsetWorld, mpi.PsetSelf, mpi.PsetShared, "app://ocean"} {
			if !names[want] {
				return fmt.Errorf("pset %q missing from %v", want, names)
			}
		}
		if _, err := sess.PsetName(n + 5); err == nil {
			return fmt.Errorf("out-of-range PsetName should fail")
		}
		// Pset info carries size.
		info, err := sess.PsetInfo("app://ocean")
		if err != nil {
			return err
		}
		if v, _ := info.Get("mpi_size"); v != "3" {
			return fmt.Errorf("mpi_size = %q", v)
		}
		// Groups from psets.
		wg, err := sess.GroupFromPset(mpi.PsetWorld)
		if err != nil {
			return err
		}
		if wg.Size() != 4 || wg.Rank() != p.JobRank() {
			return fmt.Errorf("world group size=%d rank=%d", wg.Size(), wg.Rank())
		}
		sg, err := sess.GroupFromPset(mpi.PsetSelf)
		if err != nil {
			return err
		}
		if sg.Size() != 1 {
			return fmt.Errorf("self group size=%d", sg.Size())
		}
		shg, err := sess.GroupFromPset(mpi.PsetShared)
		if err != nil {
			return err
		}
		if shg.Size() != 2 {
			return fmt.Errorf("shared group size=%d (2 ranks per node)", shg.Size())
		}
		if _, err := sess.GroupFromPset("mpi://nonexistent"); err == nil {
			return fmt.Errorf("unknown pset should fail")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSessionCommFromGroupFigure1Flow(t *testing.T) {
	// The full Figure 1 sequence: session -> pset -> group -> communicator.
	run(t, 2, 2, exCfg(), func(p *mpi.Process) error {
		sess, err := p.SessionInit(nil, nil)
		if err != nil {
			return err
		}
		grp, err := sess.GroupFromPset(mpi.PsetWorld)
		if err != nil {
			return err
		}
		comm, err := sess.CommCreateFromGroup(grp, "test.fig1", nil, nil)
		if err != nil {
			return err
		}
		if comm.Size() != 4 || comm.Rank() != p.JobRank() {
			return fmt.Errorf("comm size=%d rank=%d", comm.Size(), comm.Rank())
		}
		if !comm.UsesExCID() {
			return fmt.Errorf("sessions comm should use exCID")
		}
		if comm.ExCID().PGCID == 0 {
			return fmt.Errorf("sessions comm must carry a non-zero PGCID")
		}
		// Use it: ring send.
		right := (comm.Rank() + 1) % comm.Size()
		left := (comm.Rank() - 1 + comm.Size()) % comm.Size()
		out := []byte{byte(comm.Rank())}
		in := make([]byte, 1)
		if _, err := comm.Sendrecv(out, right, 1, in, left, 1); err != nil {
			return err
		}
		if in[0] != byte(left) {
			return fmt.Errorf("ring got %d, want %d", in[0], left)
		}
		if err := comm.Free(); err != nil {
			return err
		}
		return sess.Finalize()
	})
}

func TestSessionFinalizeWithLiveCommsFails(t *testing.T) {
	run(t, 1, 2, exCfg(), func(p *mpi.Process) error {
		sess, err := p.SessionInit(nil, nil)
		if err != nil {
			return err
		}
		grp, err := sess.GroupFromPset(mpi.PsetWorld)
		if err != nil {
			return err
		}
		comm, err := sess.CommCreateFromGroup(grp, "t", nil, nil)
		if err != nil {
			return err
		}
		if err := sess.Finalize(); err == nil {
			return fmt.Errorf("finalize with live comm should fail")
		}
		if sess.LiveComms() != 1 {
			return fmt.Errorf("LiveComms = %d", sess.LiveComms())
		}
		if err := comm.Free(); err != nil {
			return err
		}
		return sess.Finalize()
	})
}

func TestReinitializationCycles(t *testing.T) {
	// The headline Sessions capability (§II-A): initialize, finalize, and
	// re-initialize MPI multiple times in one process lifetime.
	run(t, 2, 2, exCfg(), func(p *mpi.Process) error {
		for cycle := 0; cycle < 3; cycle++ {
			sess, err := p.SessionInit(nil, nil)
			if err != nil {
				return fmt.Errorf("cycle %d: %w", cycle, err)
			}
			grp, err := sess.GroupFromPset(mpi.PsetWorld)
			if err != nil {
				return fmt.Errorf("cycle %d: %w", cycle, err)
			}
			comm, err := sess.CommCreateFromGroup(grp, fmt.Sprintf("cycle-%d", cycle), nil, nil)
			if err != nil {
				return fmt.Errorf("cycle %d: %w", cycle, err)
			}
			sum, err := comm.AllreduceInt64(int64(comm.Rank()), mpi.OpSum)
			if err != nil {
				return fmt.Errorf("cycle %d: %w", cycle, err)
			}
			if sum != 6 { // 0+1+2+3
				return fmt.Errorf("cycle %d: sum=%d", cycle, sum)
			}
			if err := comm.Free(); err != nil {
				return err
			}
			if err := sess.Finalize(); err != nil {
				return fmt.Errorf("cycle %d finalize: %w", cycle, err)
			}
			if p.Instance().Active() {
				return fmt.Errorf("cycle %d: instance still active after last finalize", cycle)
			}
		}
		if gen := p.Instance().Generation(); gen != 3 {
			return fmt.Errorf("generation = %d, want 3 full cycles", gen)
		}
		return nil
	})
}

func TestConcurrentSessionsAreIsolated(t *testing.T) {
	// Two sessions live at once in each process, each with its own
	// communicator over the same ranks: traffic must not cross.
	run(t, 1, 4, exCfg(), func(p *mpi.Process) error {
		s1, err := p.SessionInit(nil, nil)
		if err != nil {
			return err
		}
		s2, err := p.SessionInit(nil, nil)
		if err != nil {
			return err
		}
		g1, err := s1.GroupFromPset(mpi.PsetWorld)
		if err != nil {
			return err
		}
		g2, err := s2.GroupFromPset(mpi.PsetWorld)
		if err != nil {
			return err
		}
		c1, err := s1.CommCreateFromGroup(g1, "iso", nil, nil)
		if err != nil {
			return err
		}
		c2, err := s2.CommCreateFromGroup(g2, "iso", nil, nil)
		if err != nil {
			return err
		}
		if c1.ExCID() == c2.ExCID() {
			return fmt.Errorf("distinct communicators share an exCID")
		}
		// Same-tag traffic on both comms concurrently.
		done := make(chan error, 2)
		for i, comm := range []*mpi.Comm{c1, c2} {
			go func(i int, comm *mpi.Comm) {
				marker := byte(100 + i)
				buf := make([]byte, 1)
				var err error
				if comm.Rank() == 0 {
					err = comm.Send([]byte{marker}, 1, 5)
				} else if comm.Rank() == 1 {
					_, err = comm.Recv(buf, 0, 5)
					if err == nil && buf[0] != marker {
						err = fmt.Errorf("comm %d received %d, want %d (cross-session leak)", i, buf[0], marker)
					}
				}
				done <- err
			}(i, comm)
		}
		if err := <-done; err != nil {
			return err
		}
		if err := <-done; err != nil {
			return err
		}
		if err := c1.Free(); err != nil {
			return err
		}
		if err := s1.Finalize(); err != nil {
			return err
		}
		// Session 2 still fully usable after session 1 is gone.
		sum, err := c2.AllreduceInt64(1, mpi.OpSum)
		if err != nil {
			return err
		}
		if sum != 4 {
			return fmt.Errorf("sum = %d", sum)
		}
		if err := c2.Free(); err != nil {
			return err
		}
		return s2.Finalize()
	})
}

func TestWPMAndSessionsCoexist(t *testing.T) {
	// The 2MESH usage: the application initializes via MPI_Init_thread,
	// then a component library creates its own session (paper §IV-E).
	run(t, 1, 4, exCfg(), func(p *mpi.Process) error {
		if _, err := p.InitThread(mpi.ThreadMultiple); err != nil {
			return err
		}
		world := p.CommWorld()
		sess, err := p.SessionInit(nil, nil)
		if err != nil {
			return err
		}
		grp, err := sess.GroupFromPset(mpi.PsetWorld)
		if err != nil {
			return err
		}
		libComm, err := sess.CommCreateFromGroup(grp, "lib.l1", nil, nil)
		if err != nil {
			return err
		}
		// Both communicators usable.
		if err := world.Barrier(); err != nil {
			return err
		}
		sum, err := libComm.AllreduceInt64(int64(libComm.Rank()), mpi.OpSum)
		if err != nil {
			return err
		}
		if sum != 6 {
			return fmt.Errorf("lib comm sum = %d", sum)
		}
		if err := libComm.Free(); err != nil {
			return err
		}
		if err := sess.Finalize(); err != nil {
			return err
		}
		// WPM still alive after the library session is gone.
		if err := world.Barrier(); err != nil {
			return err
		}
		return p.Finalize()
	})
}

func TestSessionsUnsupportedInConsensusMode(t *testing.T) {
	run(t, 1, 2, conCfg(), func(p *mpi.Process) error {
		sess, err := p.SessionInit(nil, nil)
		if err != nil {
			return err
		}
		defer sess.Finalize()
		grp, err := sess.GroupFromPset(mpi.PsetWorld)
		if err != nil {
			return err
		}
		if _, err := sess.CommCreateFromGroup(grp, "x", nil, nil); !errors.Is(err, mpi.ErrUnsupported) {
			return fmt.Errorf("err = %v, want ErrUnsupported", err)
		}
		return nil
	})
}

func TestPreInitObjects(t *testing.T) {
	// Info, error handlers, and attribute caching all work before any
	// initialization call (§III-B5).
	run(t, 1, 1, exCfg(), func(p *mpi.Process) error {
		info := mpi.NewInfo()
		info.Set("mpi_thread_support_level", "MPI_THREAD_MULTIPLE")
		h := mpi.ErrhandlerCreate("log", func(error) {})
		kv := p.KeyvalCreate()
		p.AttrSet(kv, "cached-before-init")
		if v, ok := p.AttrGet(kv); !ok || v != "cached-before-init" {
			return fmt.Errorf("attr = %v,%v", v, ok)
		}
		p.AttrDelete(kv)
		if _, ok := p.AttrGet(kv); ok {
			return fmt.Errorf("attr survived delete")
		}
		sess, err := p.SessionInit(info, h)
		if err != nil {
			return err
		}
		if v, _ := sess.Info().Get("mpi_thread_support_level"); v != "MPI_THREAD_MULTIPLE" {
			return fmt.Errorf("session info lost key")
		}
		if sess.Errhandler().Name() != "log" {
			return fmt.Errorf("errhandler = %q", sess.Errhandler().Name())
		}
		return sess.Finalize()
	})
}

func TestRankErrorPropagation(t *testing.T) {
	err := runtime.Run(runtime.Options{
		Cluster: topo.New(topo.Loopback(2), 1),
		PPN:     2,
		Config:  exCfg(),
	}, func(p *mpi.Process) error {
		if p.JobRank() == 1 {
			return fmt.Errorf("deliberate failure")
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "rank 1") {
		t.Fatalf("err = %v, want rank 1 failure", err)
	}
	var je *runtime.JobError
	if !errors.As(err, &je) {
		t.Fatalf("err type = %T", err)
	}
}
