package mpi_test

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"gompi/internal/core"
	"gompi/internal/topo"
	"gompi/mpi"
	"gompi/runtime"
)

// TestPersistentAllreduce runs the setup-once/start-many path end to end:
// fresh inputs each round, same bound buffers, correct result every time.
func TestPersistentAllreduce(t *testing.T) {
	for _, sh := range []struct{ nodes, ppn int }{{1, 1}, {1, 4}, {2, 3}} {
		run(t, sh.nodes, sh.ppn, propCfg(), func(p *mpi.Process) error {
			if err := p.Init(); err != nil {
				return err
			}
			defer p.Finalize()
			world := p.CommWorld()
			size, rank := world.Size(), world.Rank()
			const count = 32
			send := make([]byte, count*8)
			recv := make([]byte, count*8)
			req, err := world.AllreduceInit(send, recv, count, mpi.Int64, mpi.OpSum)
			if err != nil {
				return err
			}
			for round := 0; round < 4; round++ {
				in := make([]int64, count)
				for i := range in {
					in[i] = int64(rank*1000 + round*37 + i)
				}
				copy(send, mpi.PackInt64s(in))
				if err := req.Start(); err != nil {
					return fmt.Errorf("round %d: %w", round, err)
				}
				if err := req.Wait(); err != nil {
					return fmt.Errorf("round %d: %w", round, err)
				}
				got := mpi.UnpackInt64s(recv)
				for i := range got {
					var want int64
					for r := 0; r < size; r++ {
						want += int64(r*1000 + round*37 + i)
					}
					if got[i] != want {
						return fmt.Errorf("round %d [%d]: got %d want %d", round, i, got[i], want)
					}
				}
			}
			return req.Free()
		})
	}
}

// TestPersistentCollKinds smoke-tests every *Init constructor and checks
// the framework counters the persistent path is supposed to move.
func TestPersistentCollKinds(t *testing.T) {
	run(t, 1, 4, propCfg(), func(p *mpi.Process) error {
		if err := p.Init(); err != nil {
			return err
		}
		defer p.Finalize()
		world := p.CommWorld()
		size, rank := world.Size(), world.Rank()

		bar, err := world.BarrierInit()
		if err != nil {
			return err
		}
		payload := []byte("persistent-broadcast-payload")
		buf := make([]byte, len(payload))
		if rank == 0 {
			copy(buf, payload)
		}
		bc, err := world.BcastInit(buf, 0)
		if err != nil {
			return err
		}
		blk := 16
		gsend := make([]byte, blk)
		for i := range gsend {
			gsend[i] = byte(rank*50 + i)
		}
		grecv := make([]byte, size*blk)
		ag, err := world.AllgatherInit(gsend, grecv)
		if err != nil {
			return err
		}
		asend := make([]byte, size*8)
		arecv := make([]byte, size*8)
		for d := 0; d < size; d++ {
			copy(asend[d*8:], mpi.PackInt64s([]int64{int64(rank*100 + d)}))
		}
		a2a, err := world.AlltoallInit(asend, arecv)
		if err != nil {
			return err
		}
		rsend := mpi.PackInt64s([]int64{int64(rank + 1)})
		rrecv := make([]byte, 8)
		red, err := world.ReduceInit(rsend, rrecv, 1, mpi.Int64, mpi.OpSum, 0)
		if err != nil {
			return err
		}

		for round := 0; round < 3; round++ {
			// StartAll composes the whole set, mixed kinds included.
			if err := mpi.StartAll(bar, bc, ag, a2a, red); err != nil {
				return err
			}
			for _, r := range []*mpi.PersistentColl{bar, bc, ag, a2a, red} {
				if err := r.Wait(); err != nil {
					return err
				}
			}
			if !bytes.Equal(buf, payload) {
				return fmt.Errorf("round %d: bcast payload corrupt", round)
			}
			for r := 0; r < size; r++ {
				for i := 0; i < blk; i++ {
					if grecv[r*blk+i] != byte(r*50+i) {
						return fmt.Errorf("round %d: allgather block %d corrupt", round, r)
					}
				}
			}
			for s := 0; s < size; s++ {
				got := mpi.UnpackInt64s(arecv[s*8 : s*8+8])[0]
				if want := int64(s*100 + rank); got != want {
					return fmt.Errorf("round %d: alltoall block from %d = %d, want %d", round, s, got, want)
				}
			}
			if rank == 0 {
				got := mpi.UnpackInt64s(rrecv)[0]
				if want := int64(size * (size + 1) / 2); got != want {
					return fmt.Errorf("round %d: reduce got %d want %d", round, got, want)
				}
			}
		}

		// State machine: double Start, Wait-after-complete, use-after-Free.
		if err := bar.Start(); err != nil {
			return err
		}
		if err := bar.Start(); !errors.Is(err, mpi.ErrActive) {
			return fmt.Errorf("double Start: %v", err)
		}
		if err := bar.Free(); !errors.Is(err, mpi.ErrActive) {
			return fmt.Errorf("Free while active: %v", err)
		}
		if err := bar.Wait(); err != nil {
			return err
		}
		if err := bar.Wait(); !errors.Is(err, mpi.ErrCollNotStarted) {
			return fmt.Errorf("Wait on inactive: %v", err)
		}
		for _, r := range []*mpi.PersistentColl{bar, bc, ag, a2a, red} {
			if err := r.Free(); err != nil {
				return err
			}
		}
		if err := bar.Start(); !errors.Is(err, mpi.ErrCollFreed) {
			return fmt.Errorf("Start after Free: %v", err)
		}

		st := p.CollStatsSnapshot()
		// 3 StartAll rounds x 5 requests, plus the lone barrier Start.
		if st["persistent_starts"] < 16 {
			return fmt.Errorf("persistent_starts = %d, want >= 16 (%v)", st["persistent_starts"], st)
		}
		return nil
	})
}

// TestCollExecModeEquivalence is the end-to-end A/B property: the same
// workload under the DAG engine (default) and under the sequential direct
// executor (the pre-schedule reference) must produce byte-identical
// results on every rank.
func TestCollExecModeEquivalence(t *testing.T) {
	type capture struct {
		allred []byte
		gather []byte
	}
	runMode := func(execMode string) []capture {
		caps := make([]capture, 6)
		cfg := propCfg()
		cfg.CollExec = execMode
		run(t, 2, 3, cfg, func(p *mpi.Process) error {
			if err := p.Init(); err != nil {
				return err
			}
			defer p.Finalize()
			world := p.CommWorld()
			size, rank := world.Size(), world.Rank()
			const count = 96
			in := make([]int64, count)
			for i := range in {
				in[i] = int64(rank*7919 + i)
			}
			send := mpi.PackInt64s(in)
			recv := make([]byte, count*8)
			if err := world.Allreduce(send, recv, count, mpi.Int64, mpi.OpSum); err != nil {
				return err
			}
			grecv := make([]byte, size*count*8)
			if err := world.Allgather(send, grecv); err != nil {
				return err
			}
			caps[rank] = capture{allred: recv, gather: grecv}
			return nil
		})
		return caps
	}
	engine := runMode("")
	direct := runMode("direct")
	for r := range engine {
		if !bytes.Equal(engine[r].allred, direct[r].allred) {
			t.Fatalf("rank %d: allreduce diverges between executors", r)
		}
		if !bytes.Equal(engine[r].gather, direct[r].gather) {
			t.Fatalf("rank %d: allgather diverges between executors", r)
		}
	}
}

// TestCollExecModeRejected: a bogus executor name must fail instance
// bring-up rather than silently falling back.
func TestCollExecModeRejected(t *testing.T) {
	cfg := propCfg()
	cfg.CollExec = "bogus"
	err := runErr(t, 1, 1, cfg, func(p *mpi.Process) error {
		return p.Init()
	})
	if err == nil {
		t.Fatal("CollExec=bogus accepted")
	}
}

// runErr is run without the t.Fatal, for tests that expect launch failure.
func runErr(t *testing.T, nodes, ppn int, cfg core.Config, main func(p *mpi.Process) error) error {
	t.Helper()
	return runtime.Run(runtime.Options{
		Cluster: topo.New(topo.Loopback(ppn), nodes),
		PPN:     ppn,
		Config:  cfg,
	}, main)
}
