package mpi

import (
	"fmt"

	"gompi/internal/pml"
)

// Partitioned point-to-point (MPI 4.0 MPI_Psend_init / MPI_Precv_init):
// one persistent transfer whose payload is contributed and consumed in
// independent partitions. The sender marks each partition ready with
// Pready — from any goroutine, in any order, typically as compute tiles
// finish — and the receiver can start consuming any partition the moment
// Parrived reports it, long before the whole transfer completes.
//
// Each partition travels as an ordinary message on a tag derived from the
// (user tag, partition) pair inside a reserved internal region, so the
// PML's bucketed matcher handles the reordering and the transfer inherits
// rendezvous flow control per partition.

// MaxPartitions bounds the partition count of one partitioned request.
const MaxPartitions = pml.MaxPartitions

// PartitionedRequest is a partitioned send or receive request. It
// satisfies Startable, so StartAll composes it with other persistent
// requests.
type PartitionedRequest struct {
	c  *Comm
	ps *pml.PartSend // exactly one of ps/pr is set
	pr *pml.PartRecv
}

// PsendInit prepares a partitioned send of buf to dest, split into
// partitions equal chunks (MPI_Psend_init). tag must be a non-negative
// application tag below 1<<16.
func (c *Comm) PsendInit(buf []byte, dest, tag, partitions int) (*PartitionedRequest, error) {
	if err := c.checkP2P(dest, tag, false); err != nil {
		return nil, c.errh.invoke(err)
	}
	ps, err := c.ch.PsendInit(dest, tag, buf, partitions)
	if err != nil {
		return nil, c.errh.invoke(err)
	}
	return &PartitionedRequest{c: c, ps: ps}, nil
}

// PrecvInit prepares a partitioned receive into buf from src
// (MPI_Precv_init). Both sides must agree on tag, total size, and
// partition count.
func (c *Comm) PrecvInit(buf []byte, src, tag, partitions int) (*PartitionedRequest, error) {
	if err := c.checkP2P(src, tag, false); err != nil {
		return nil, c.errh.invoke(err)
	}
	pr, err := c.ch.PrecvInit(src, tag, buf, partitions)
	if err != nil {
		return nil, c.errh.invoke(err)
	}
	return &PartitionedRequest{c: c, pr: pr}, nil
}

// Partitions returns the partition count.
func (r *PartitionedRequest) Partitions() int {
	if r.ps != nil {
		return r.ps.Partitions()
	}
	return r.pr.Partitions()
}

// Start arms a new round (MPI_Start).
func (r *PartitionedRequest) Start() error {
	if r.ps != nil {
		return r.c.errh.invoke(r.ps.Start())
	}
	return r.c.errh.invoke(r.pr.Start())
}

// Pready marks partition p of a send request ready for transfer
// (MPI_Pready). It is an error on a receive request.
func (r *PartitionedRequest) Pready(p int) error {
	if r.ps == nil {
		return r.c.errh.invoke(fmt.Errorf("mpi: Pready on a partitioned receive request"))
	}
	return r.c.errh.invoke(r.ps.Pready(p))
}

// PreadyRange marks partitions [lo, hi] ready (MPI_Pready_range).
func (r *PartitionedRequest) PreadyRange(lo, hi int) error {
	for p := lo; p <= hi; p++ {
		if err := r.Pready(p); err != nil {
			return err
		}
	}
	return nil
}

// Parrived reports whether partition p of a receive request has landed
// (MPI_Parrived); its bytes are readable as soon as this returns true.
// It is an error on a send request.
func (r *PartitionedRequest) Parrived(p int) (bool, error) {
	if r.pr == nil {
		return false, r.c.errh.invoke(fmt.Errorf("mpi: Parrived on a partitioned send request"))
	}
	ok, err := r.pr.Parrived(p)
	return ok, r.c.errh.invoke(err)
}

// Wait blocks until the active round completes and rearms the request.
func (r *PartitionedRequest) Wait() error {
	if r.ps != nil {
		return r.c.errh.invoke(r.ps.Wait())
	}
	return r.c.errh.invoke(r.pr.Wait())
}

// Test polls the active round, rearming the request on completion. An
// inactive request tests as complete, as MPI_Test does.
func (r *PartitionedRequest) Test() (bool, error) {
	var done bool
	var err error
	if r.ps != nil {
		done, err = r.ps.Test()
	} else {
		done, err = r.pr.Test()
	}
	return done, r.c.errh.invoke(err)
}

// Free releases the request (MPI_Request_free). Freeing an active round
// is an error.
func (r *PartitionedRequest) Free() error {
	if r.ps != nil {
		return r.c.errh.invoke(r.ps.Free())
	}
	return r.c.errh.invoke(r.pr.Free())
}
