package mpi

import (
	"fmt"
	"sync"
)

// Errhandler determines how errors raised on a session or communicator are
// treated. Like info objects, error handlers may be created and destroyed
// before MPI initialization and are always thread-safe (paper §III-B5).
type Errhandler struct {
	mu   sync.Mutex
	name string
	fn   func(error)
}

// ErrorsAreFatal returns the MPI_ERRORS_ARE_FATAL handler: any error panics
// the calling goroutine, the closest Go analogue to aborting the job.
func ErrorsAreFatal() *Errhandler {
	return &Errhandler{
		name: "MPI_ERRORS_ARE_FATAL",
		fn:   func(err error) { panic(fmt.Sprintf("mpi: fatal error: %v", err)) },
	}
}

// ErrorsReturn returns the MPI_ERRORS_RETURN handler: errors are simply
// returned to the caller (the natural Go behaviour).
func ErrorsReturn() *Errhandler {
	return &Errhandler{name: "MPI_ERRORS_RETURN"}
}

// ErrhandlerCreate builds a user-defined error handler
// (MPI_Session_create_errhandler / MPI_Comm_create_errhandler).
func ErrhandlerCreate(name string, fn func(error)) *Errhandler {
	return &Errhandler{name: name, fn: fn}
}

// Name returns the handler's name.
func (e *Errhandler) Name() string {
	if e == nil {
		return "MPI_ERRORS_RETURN"
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.name
}

// invoke runs the handler on err (nil-safe) and passes the error through.
func (e *Errhandler) invoke(err error) error {
	if err == nil || e == nil {
		return err
	}
	e.mu.Lock()
	fn := e.fn
	e.mu.Unlock()
	if fn != nil {
		fn(err)
	}
	return err
}
