package mpi_test

import (
	"errors"
	"fmt"
	"testing"

	"gompi/mpi"
)

func TestErrorClassification(t *testing.T) {
	if mpi.ErrorClassOf(nil) != mpi.ErrSuccess {
		t.Fatal("nil should be MPI_SUCCESS")
	}
	cases := []struct {
		err  error
		want mpi.ErrorClass
	}{
		{mpi.ErrCommFreed, mpi.ErrClassComm},
		{mpi.ErrSessionFinalized, mpi.ErrClassSession},
		{mpi.ErrFinalized, mpi.ErrClassSession},
		{mpi.ErrUnsupported, mpi.ErrClassUnsupported},
		{errors.New("anything else"), mpi.ErrClassOther},
		{fmt.Errorf("wrapped: %w", mpi.ErrCommFreed), mpi.ErrClassComm},
	}
	for _, c := range cases {
		if got := mpi.ErrorClassOf(c.err); got != c.want {
			t.Errorf("ErrorClassOf(%v) = %v, want %v", c.err, got, c.want)
		}
	}
	if s := mpi.ErrorString(mpi.ErrCommFreed); s == "" || s == "MPI_SUCCESS" {
		t.Fatalf("ErrorString = %q", s)
	}
	if mpi.ErrorString(nil) != "MPI_SUCCESS" {
		t.Fatal("nil ErrorString should be MPI_SUCCESS")
	}
}

func TestErrorClassTruncate(t *testing.T) {
	withWorld(t, 1, 2, exCfg(), func(p *mpi.Process, world *mpi.Comm) error {
		if world.Rank() == 0 {
			return world.Send([]byte("too much data"), 1, 1)
		}
		small := make([]byte, 2)
		_, err := world.Recv(small, 0, 1)
		if mpi.ErrorClassOf(err) != mpi.ErrClassTruncate {
			return fmt.Errorf("truncation classified as %v", mpi.ErrorClassOf(err))
		}
		return nil
	})
}

func TestCreatePsetDiscoverableJobWide(t *testing.T) {
	run(t, 2, 2, exCfg(), func(p *mpi.Process) error {
		sess, err := p.SessionInit(nil, nil)
		if err != nil {
			return err
		}
		defer sess.Finalize()
		world, err := sess.GroupFromPset(mpi.PsetWorld)
		if err != nil {
			return err
		}
		evens, err := world.Incl([]int{0, 2})
		if err != nil {
			return err
		}
		// Members register the pset collectively.
		if p.JobRank()%2 == 0 {
			if err := sess.CreatePset("app://evens", evens); err != nil {
				return err
			}
		}
		// Everyone (including non-members) can resolve it once registered;
		// non-members poll since registration is collective over members
		// only.
		var grp *mpi.Group
		for {
			grp, err = sess.GroupFromPset("app://evens")
			if err == nil {
				break
			}
			if p.JobRank()%2 == 0 {
				return err // members must see it immediately
			}
		}
		if grp.Size() != 2 {
			return fmt.Errorf("pset size = %d", grp.Size())
		}
		// Members build a communicator from it.
		if p.JobRank()%2 == 0 {
			comm, err := sess.CommCreateFromGroup(grp, "evens.comm", nil, nil)
			if err != nil {
				return err
			}
			defer comm.Free()
			sum, err := comm.AllreduceInt64(int64(p.JobRank()), mpi.OpSum)
			if err != nil {
				return err
			}
			if sum != 2 {
				return fmt.Errorf("sum = %d", sum)
			}
		}
		return nil
	})
}

func TestCreatePsetValidation(t *testing.T) {
	run(t, 1, 2, exCfg(), func(p *mpi.Process) error {
		sess, err := p.SessionInit(nil, nil)
		if err != nil {
			return err
		}
		defer sess.Finalize()
		world, err := sess.GroupFromPset(mpi.PsetWorld)
		if err != nil {
			return err
		}
		if err := sess.CreatePset("", world); err == nil {
			return fmt.Errorf("empty name accepted")
		}
		other, err := world.Excl([]int{p.JobRank()})
		if err != nil {
			return err
		}
		if err := sess.CreatePset("app://not-me", other); err == nil {
			return fmt.Errorf("non-member registration accepted")
		}
		return nil
	})
}
