// Package gompi is a from-scratch Go reproduction of "MPI Sessions:
// Evaluation of an Implementation in Open MPI" (Hjelm et al., IEEE CLUSTER
// 2019): an MPI-like message-passing library with the MPI Sessions
// extensions, the PMIx/PRRTE runtime substrate it depends on, and the
// complete benchmark harness that regenerates the paper's evaluation.
//
// Public entry points live in the mpi and runtime packages; see README.md
// for a quickstart and DESIGN.md for the system inventory.
package gompi
