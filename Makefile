GO ?= go

.PHONY: check vet build lint test test-race chaos pool-guard fuzz-smoke bench bench-smoke bench-pml bench-coll bench-udp smoke-udp figures

# check is the repo's verification gate: vet, build, the gompilint suite,
# the full test suite under the race detector, the debug-build arena
# guard, and a short fixed-budget run of the packet-decoder fuzz targets.
check: vet build lint test-race pool-guard fuzz-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# chaos runs the seeded fault-injection matrix (DESIGN.md §7): simnet
# fault-plan unit tests, control-plane retry under drops/partitions, PML
# recovery from duplicated/reordered packets, MPI-level peer death, the
# mid-job rank respawn path, and the end-to-end twomesh recovery demo
# (rank killed mid-phase, survivors rebuild over gompi://alive).
# Deterministic seeds — a failure here is a bug, not flakiness.
chaos:
	$(GO) test -race -run Chaos ./internal/simnet ./internal/prrte ./internal/pmix ./internal/pml ./mpi ./internal/twomesh ./runtime

# lint runs the project's own go/analysis suite (DESIGN.md §6a): request
# leaks, pool ownership, lock order, handle lifecycle, discarded MPI errors,
# in-flight buffer aliasing, collective order/balance, sync/atomic mixing,
# and //gompilint:noalloc hot paths — interprocedural via per-function
# effect summaries.
lint:
	$(GO) run ./cmd/gompilint ./...

# pool-guard exercises the -tags debug arena guard: double-putBuf panics
# and recycled packets are poisoned, under the race detector.
pool-guard:
	$(GO) test -race -tags debug -run TestPoolGuard ./internal/pml

# fuzz-smoke runs the packet-decoder fuzz targets for a short fixed
# budget on top of the committed seed corpora (internal/pml/testdata/fuzz,
# internal/btl/udp/testdata/fuzz).
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeEnvelope$$' -fuzztime 5s ./internal/pml
	$(GO) test -run '^$$' -fuzz '^FuzzMatchHeaderRoundTrip$$' -fuzztime 5s ./internal/pml
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeFrame$$' -fuzztime 5s ./internal/btl/udp

bench:
	$(GO) test -bench=. -benchmem ./...

# bench-smoke runs every ablation benchmark once — a fast plumbing check
# that the measurement harnesses still execute end to end.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkAblation' -benchtime=1x ./...

# bench-pml regenerates the machine-readable PML matching-engine ablation
# (list vs bucket, pairs and incast shapes) quoted by EXPERIMENTS.md.
bench-pml:
	$(GO) run ./cmd/pmlbench -out BENCH_pml.json

# bench-coll regenerates the persistent-collective ablation (setup-once
# Start/Wait vs full per-call dispatch) quoted by EXPERIMENTS.md.
bench-coll:
	$(GO) run ./cmd/collbench -out BENCH_coll.json

# bench-udp regenerates the simnet-vs-udp transport comparison quoted by
# EXPERIMENTS.md: the same OSU kernels over the simulated fabric and over
# real loopback UDP sockets (forced udp BTL), accumulated as JSONL.
bench-udp:
	rm -f BENCH_udp.json
	for t in sim udp; do \
		$(GO) run ./cmd/osu -bench latency -transport $$t -profile loopback -np 2 -ppn 2 -sessions -json BENCH_udp.json && \
		$(GO) run ./cmd/osu -bench bw -transport $$t -profile loopback -np 2 -ppn 2 -sessions -json BENCH_udp.json && \
		$(GO) run ./cmd/osu -bench allreduce -transport $$t -profile loopback -np 8 -ppn 8 -sessions -json BENCH_udp.json || exit 1; \
	done

# smoke-udp is the CI process-mode gate: a real multi-process job over
# loopback UDP sockets, with prun's own watchdog bounding the run.
smoke-udp:
	$(GO) run ./cmd/prun -np 2 -transport udp -timeout 60s -app ring
	$(GO) run ./cmd/prun -np 4 -transport udp -timeout 60s -app ring

figures:
	$(GO) run ./cmd/figures -table 1 -fig all
