GO ?= go

.PHONY: check vet build test test-race bench figures

# check is the repo's verification gate: vet, build, and the full test
# suite under the race detector.
check: vet build test-race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

figures:
	$(GO) run ./cmd/figures -table 1 -fig all
