GO ?= go

.PHONY: check vet build test test-race bench bench-smoke bench-pml figures

# check is the repo's verification gate: vet, build, and the full test
# suite under the race detector.
check: vet build test-race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# bench-smoke runs every ablation benchmark once — a fast plumbing check
# that the measurement harnesses still execute end to end.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkAblation' -benchtime=1x ./...

# bench-pml regenerates the machine-readable PML matching-engine ablation
# (list vs bucket, pairs and incast shapes) quoted by EXPERIMENTS.md.
bench-pml:
	$(GO) run ./cmd/pmlbench -out BENCH_pml.json

figures:
	$(GO) run ./cmd/figures -table 1 -fig all
